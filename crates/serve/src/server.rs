//! The server: a bounded request queue in front of a micro-batching worker
//! thread that owns the recogniser and one long-lived phone decoder, plus
//! incremental stream sessions multiplexed over the same queue.

use crate::future::{DecodeFuture, Slot};
use crate::{ServeConfig, ServeError};
use asr_core::{DecodeSession, PartialHypothesis, PhoneDecoder, Recognizer};
use asr_hw::UtteranceReport;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Instant;

/// One accepted command: a whole-utterance decode, or one step in the life
/// of an incremental stream session.
///
/// The drop guard is the no-dangling-future invariant: however a
/// slot-carrying command leaves the queue (served, drained at shutdown, or
/// dropped because the worker died), its future resolves — unserved requests
/// fail with the typed [`ServeError::Closed`] instead of hanging their
/// caller.  Dropped stream pushes need no guard: their session's finish
/// command resolves (or fails `Closed`) on its own.
#[derive(Debug)]
enum Command {
    /// Decode one complete utterance and fulfil the slot.
    Decode {
        features: Vec<Vec<f32>>,
        slot: Arc<Slot>,
    },
    /// Create an incremental session for stream `id`.
    StreamOpen { id: u64, state: Arc<StreamState> },
    /// Feed a feature chunk to stream `id`.
    StreamPush { id: u64, chunk: Vec<Vec<f32>> },
    /// Close stream `id` and fulfil the slot with its final result.
    StreamFinish { id: u64, slot: Arc<Slot> },
    /// Discard stream `id`'s session without producing a result (the
    /// client's handle was dropped unfinished).
    StreamCancel { id: u64 },
}

impl Command {
    /// Stream commands are latency-sensitive: the micro-batcher skips its
    /// coalescing wait while one is queued.
    fn is_stream(&self) -> bool {
        !matches!(self, Command::Decode { .. })
    }
}

#[derive(Debug)]
struct Request {
    command: Command,
    /// When the command entered the queue; the micro-batcher flushes when
    /// the *oldest* pending command has waited `max_batch_delay`.
    enqueued: Instant,
}

impl Drop for Request {
    fn drop(&mut self) {
        // No-op when the batcher already fulfilled the slot.
        match &self.command {
            Command::Decode { slot, .. } | Command::StreamFinish { slot, .. } => {
                slot.fulfil(Err(ServeError::Closed));
            }
            Command::StreamOpen { .. }
            | Command::StreamPush { .. }
            | Command::StreamCancel { .. } => {}
        }
    }
}

/// Shared per-stream state: the latest partial hypothesis, readable by the
/// client between pushes.
#[derive(Debug, Default)]
struct StreamState {
    partial: Mutex<PartialHypothesis>,
}

impl StreamState {
    fn snapshot(&self) -> PartialHypothesis {
        self.partial
            .lock()
            .expect("stream partial lock poisoned")
            .clone()
    }

    fn store(&self, partial: PartialHypothesis) {
        *self.partial.lock().expect("stream partial lock poisoned") = partial;
    }
}

#[derive(Debug, Default)]
struct Queue {
    pending: VecDeque<Request>,
    closed: bool,
}

/// Monotonic counters shared between callers and the worker.
#[derive(Debug, Default)]
struct Counters {
    submitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    batches: AtomicU64,
    largest_batch: AtomicUsize,
    stream_sessions: AtomicU64,
    stream_chunks: AtomicU64,
    /// Stream-session ids (monotonic; never reused within a server).
    next_stream_id: AtomicU64,
}

#[derive(Debug)]
struct Shared {
    queue: Mutex<Queue>,
    wakeup: Condvar,
    counters: Counters,
    /// The stream-level hardware report: every served utterance's report
    /// folded with [`UtteranceReport::merge`] (a sequential stream through
    /// one scorer — sharded backends have already parallel-merged their
    /// shards underneath).
    hardware: Mutex<Option<UtteranceReport>>,
}

/// A point-in-time snapshot of the serving counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Units of result-producing work accepted into the queue:
    /// whole-utterance decode requests plus stream-session finishes.  Every
    /// `completed`/`failed` tick has a matching `submitted` tick, so
    /// `submitted - completed - failed` is the in-flight depth.
    pub submitted: u64,
    /// Requests refused with [`ServeError::QueueFull`].
    pub rejected: u64,
    /// Requests decoded successfully.
    pub completed: u64,
    /// Requests that failed to decode (the error went to the caller).
    pub failed: u64,
    /// Micro-batches flushed to the decoder.
    pub batches: u64,
    /// Largest micro-batch flushed so far.
    pub largest_batch: usize,
    /// Incremental stream sessions opened.
    pub stream_sessions: u64,
    /// Stream feature chunks processed by the worker.
    pub stream_chunks: u64,
}

impl ServeStats {
    /// Mean utterances per flushed batch — the amortisation the micro-batcher
    /// achieved (1.0 means no coalescing happened).
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            (self.completed + self.failed) as f64 / self.batches as f64
        }
    }
}

/// The async batched serving front.
///
/// [`AsrServer::spawn`] moves a [`Recognizer`] onto a dedicated batcher
/// thread, which builds **one** phone decoder from the configured backend and
/// reuses it for every micro-batch — the serving-scale version of
/// [`Recognizer::decode_batch`]'s one-scorer amortisation.  Requests enter
/// through [`AsrServer::submit`] (bounded queue, typed backpressure) and
/// complete through their [`DecodeFuture`]s.
///
/// Dropping the server closes the queue, drains the already-accepted
/// requests, and joins the worker; see [`AsrServer::close`] for the explicit
/// form.
///
/// [`Recognizer::decode_batch`]: asr_core::Recognizer::decode_batch
#[derive(Debug)]
pub struct AsrServer {
    shared: Arc<Shared>,
    worker: Option<JoinHandle<()>>,
    config: ServeConfig,
}

impl AsrServer {
    /// Validates `config`, builds the backend scorer, and starts the batcher
    /// thread.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] for a bad serving configuration
    /// and [`ServeError::Decode`] when the recogniser's backend fails to
    /// build.
    pub fn spawn(recognizer: Recognizer, config: ServeConfig) -> Result<Self, ServeError> {
        config.validate()?;
        // Build the long-lived decoder up front so a bad backend config fails
        // at spawn, not on the first request.
        let decoder = recognizer.phone_decoder()?;
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue::default()),
            wakeup: Condvar::new(),
            counters: Counters::default(),
            hardware: Mutex::new(None),
        });
        let worker_shared = Arc::clone(&shared);
        let worker_config = config.clone();
        let worker = std::thread::Builder::new()
            .name("asr-serve-batcher".into())
            .spawn(move || batcher_loop(&recognizer, decoder, &worker_shared, &worker_config))
            .expect("spawning the batcher thread failed");
        Ok(AsrServer {
            shared,
            worker: Some(worker),
            config,
        })
    }

    /// The serving configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Enqueues one utterance for decoding and returns its future.
    ///
    /// Never blocks: admission is a queue-bound check under a short lock.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::QueueFull`] when `max_pending` requests are
    /// already waiting (the request is not enqueued — retry or shed), and
    /// [`ServeError::Closed`] after [`AsrServer::close`]/drop began.
    pub fn submit(&self, features: Vec<Vec<f32>>) -> Result<DecodeFuture, ServeError> {
        let slot = Slot::new();
        self.enqueue(
            Command::Decode {
                features,
                slot: Arc::clone(&slot),
            },
            true,
            true,
        )?;
        Ok(DecodeFuture::new(slot))
    }

    /// Checks admission under the queue lock: closed servers refuse
    /// everything, and bounded commands are refused when `max_pending` are
    /// already waiting.  Session open/finish commands are exempt from the
    /// bound — they carry no feature payload, and bouncing a *finish* would
    /// strand a session whose work is already done.
    fn admit(&self, queue: &mut Queue, bounded: bool) -> Result<(), ServeError> {
        if queue.closed {
            return Err(ServeError::Closed);
        }
        if bounded && queue.pending.len() >= self.config.max_pending {
            self.shared
                .counters
                .rejected
                .fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::QueueFull {
                capacity: self.config.max_pending,
            });
        }
        Ok(())
    }

    /// Enqueues one command.  `count_submitted` is set for the commands that
    /// will eventually resolve as `completed`/`failed` (whole-utterance
    /// decodes, stream finishes), so a `stats()` snapshot never sees
    /// `completed + failed > submitted`; the increment happens while the
    /// queue lock is still held, before the batcher can complete the work.
    fn enqueue(
        &self,
        command: Command,
        bounded: bool,
        count_submitted: bool,
    ) -> Result<(), ServeError> {
        let mut queue = self.lock_queue();
        self.admit(&mut queue, bounded)?;
        queue.pending.push_back(Request {
            command,
            enqueued: Instant::now(),
        });
        if count_submitted {
            self.shared
                .counters
                .submitted
                .fetch_add(1, Ordering::Relaxed);
        }
        drop(queue);
        self.shared.wakeup.notify_all();
        Ok(())
    }

    /// Opens an incremental stream session: the serving-side counterpart of
    /// [`Recognizer::begin_session`](asr_core::Recognizer::begin_session).
    /// Push feature chunks as they arrive, read partial hypotheses between
    /// pushes, and [`StreamHandle::finish`] for a [`DecodeFuture`] resolving
    /// to the same result an offline decode of the concatenated chunks would
    /// produce.  Sessions share the worker (and its queue) with batch
    /// requests; the micro-batcher skips its coalescing delay while stream
    /// commands are queued, so interactive sessions are not taxed with batch
    /// latency.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Closed`] after shutdown began.
    pub fn open_stream(&self) -> Result<StreamHandle<'_>, ServeError> {
        let id = self
            .shared
            .counters
            .next_stream_id
            .fetch_add(1, Ordering::Relaxed);
        let state = Arc::new(StreamState::default());
        self.enqueue(
            Command::StreamOpen {
                id,
                state: Arc::clone(&state),
            },
            false,
            false,
        )?;
        self.shared
            .counters
            .stream_sessions
            .fetch_add(1, Ordering::Relaxed);
        Ok(StreamHandle {
            server: self,
            id,
            state,
            consumed: false,
        })
    }

    /// A snapshot of the serving counters.
    pub fn stats(&self) -> ServeStats {
        let c = &self.shared.counters;
        ServeStats {
            submitted: c.submitted.load(Ordering::Relaxed),
            rejected: c.rejected.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            failed: c.failed.load(Ordering::Relaxed),
            batches: c.batches.load(Ordering::Relaxed),
            largest_batch: c.largest_batch.load(Ordering::Relaxed),
            stream_sessions: c.stream_sessions.load(Ordering::Relaxed),
            stream_chunks: c.stream_chunks.load(Ordering::Relaxed),
        }
    }

    /// The hardware report of the whole served stream so far: every decoded
    /// utterance's report folded with [`UtteranceReport::merge`].  `None`
    /// until a hardware-backed utterance completes (software backends keep no
    /// report).
    pub fn hardware_report(&self) -> Option<UtteranceReport> {
        self.shared
            .hardware
            .lock()
            .expect("hardware report lock poisoned")
            .clone()
    }

    /// Number of requests currently waiting in the queue.
    pub fn pending(&self) -> usize {
        self.lock_queue().pending.len()
    }

    /// Closes the queue, waits for the already-accepted requests to finish,
    /// and joins the batcher thread.  Equivalent to dropping the server, but
    /// explicit about when the blocking happens.
    pub fn close(mut self) {
        self.shutdown();
    }

    fn lock_queue(&self) -> MutexGuard<'_, Queue> {
        self.shared
            .queue
            .lock()
            .expect("request queue lock poisoned")
    }

    fn shutdown(&mut self) {
        self.lock_queue().closed = true;
        self.shared.wakeup.notify_all();
        if let Some(worker) = self.worker.take() {
            // A panicked worker is already detached from the queue; the drain
            // below (and each Request's drop guard) fails what it left behind.
            let _ = worker.join();
        }
        // Normally empty (the worker drains before exiting); non-empty only
        // if the worker died mid-stream.
        self.lock_queue().pending.clear();
    }
}

impl Drop for AsrServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A client-side handle on one incremental stream session.
///
/// Obtained from [`AsrServer::open_stream`].  Chunks pushed through the
/// handle are processed in order by the server's worker; the latest partial
/// hypothesis is always readable without blocking; [`StreamHandle::finish`]
/// converts the session into a [`DecodeFuture`].  Commands of different
/// sessions (and batch submissions) interleave freely on the queue — each
/// session has its own decoder state on the worker.
///
/// Dropping the handle without finishing cancels the session: the worker
/// discards its decoder state (no result is produced, nothing counts as
/// completed or failed), so abandoned sessions cannot accumulate on a
/// long-running server.
#[derive(Debug)]
pub struct StreamHandle<'s> {
    server: &'s AsrServer,
    id: u64,
    state: Arc<StreamState>,
    /// Whether `finish` consumed the session (suppresses the cancel-on-drop).
    consumed: bool,
}

impl Drop for StreamHandle<'_> {
    fn drop(&mut self) {
        if !self.consumed {
            // Best effort: on a closed server the worker is draining anyway
            // and its session map dies with it.
            let _ = self
                .server
                .enqueue(Command::StreamCancel { id: self.id }, false, false);
        }
    }
}

impl StreamHandle<'_> {
    /// The session's id (unique within its server).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Enqueues one feature chunk for this session.
    ///
    /// Never blocks.  The chunk is cloned into the queue, so on backpressure
    /// the caller still owns the data and can retry.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::QueueFull`] when the bounded queue is full (the
    /// chunk was not enqueued) and [`ServeError::Closed`] after shutdown
    /// began.  Decode errors inside the worker surface on
    /// [`StreamHandle::finish`], not here.
    pub fn push_chunk(&self, chunk: &[Vec<f32>]) -> Result<(), ServeError> {
        self.server.enqueue(
            Command::StreamPush {
                id: self.id,
                chunk: chunk.to_vec(),
            },
            true,
            false,
        )
    }

    /// The latest partial hypothesis the worker has published for this
    /// session.  Non-blocking; lags the most recent push until the worker
    /// processes it.
    pub fn partial(&self) -> PartialHypothesis {
        self.state.snapshot()
    }

    /// Closes the session and returns the future of its final result —
    /// identical to an offline decode of every chunk pushed so far (the
    /// typed empty result if none were).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Closed`] if the server shut down before the
    /// finish could be enqueued.
    pub fn finish(mut self) -> Result<DecodeFuture, ServeError> {
        // Either way the handle is spent: on success the worker will remove
        // the session at the finish command; on Closed the worker is
        // draining and its session map dies with it.  Never cancel-on-drop
        // after this.
        self.consumed = true;
        let slot = Slot::new();
        self.server.enqueue(
            Command::StreamFinish {
                id: self.id,
                slot: Arc::clone(&slot),
            },
            false,
            true,
        )?;
        Ok(DecodeFuture::new(slot))
    }
}

/// Closes the queue and fails its pending requests when the worker exits —
/// including by panic.  Without this, a panicking worker (e.g. a poisoned
/// lock) would leave `closed == false`: `submit` would keep accepting
/// requests that nothing will ever dequeue, and their futures would hang
/// until the server itself is dropped.  A no-op on the normal exit path,
/// where the queue is already closed and drained.
struct CloseOnExit<'a>(&'a Shared);

impl Drop for CloseOnExit<'_> {
    fn drop(&mut self) {
        // Recover the queue even if the panic poisoned its lock.
        let mut queue = self
            .0
            .queue
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        queue.closed = true;
        // Dropping the requests fires their drop guards: every pending
        // future resolves to `ServeError::Closed` instead of hanging.
        queue.pending.clear();
        drop(queue);
        self.0.wakeup.notify_all();
    }
}

/// One live stream session on the worker: the incremental decoder plus the
/// shared state its partials publish into.  The whole entry degrades to the
/// first error the session hit; the finish command collects it.
type WorkerStream<'a> = Result<(DecodeSession<'a>, Arc<StreamState>), ServeError>;

/// Folds a decoded utterance's outcome into the stream-level counters and
/// hardware report.
fn record_outcome(shared: &Shared, outcome: &Result<asr_core::DecodeResult, ServeError>) {
    let c = &shared.counters;
    match outcome {
        Ok(result) => {
            c.completed.fetch_add(1, Ordering::Relaxed);
            if let Some(report) = &result.hardware {
                let mut merged = shared
                    .hardware
                    .lock()
                    .expect("hardware report lock poisoned");
                *merged = Some(match merged.take() {
                    Some(acc) => acc.merge(report),
                    None => report.clone(),
                });
            }
        }
        Err(_) => {
            c.failed.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// The worker: wait for commands, coalesce, decode, fulfil — until the queue
/// is closed *and* drained.  Whole-utterance decodes run through the one
/// long-lived `decoder`; each stream session owns its own incremental
/// decoder state in `sessions` (interleaved sessions cannot share CDS /
/// arena state).
fn batcher_loop(
    recognizer: &Recognizer,
    mut decoder: PhoneDecoder,
    shared: &Shared,
    config: &ServeConfig,
) {
    let _close_on_exit = CloseOnExit(shared);
    let mut sessions: HashMap<u64, WorkerStream<'_>> = HashMap::new();
    loop {
        let batch = {
            let mut queue = shared.queue.lock().expect("request queue lock poisoned");
            // Sleep until there is work (or shutdown with nothing left).
            loop {
                if !queue.pending.is_empty() {
                    break;
                }
                if queue.closed {
                    return;
                }
                queue = shared
                    .wakeup
                    .wait(queue)
                    .expect("request queue lock poisoned");
            }
            // Micro-batching: give later requests until the *oldest* pending
            // request has waited `max_batch_delay` to join this flush, unless
            // the batch is already full, the server is draining for shutdown
            // (then latency no longer buys anything), or a stream command is
            // queued (streams are latency-bound: their chunks gain nothing
            // from coalescing with batch traffic).  Anchoring the deadline at
            // enqueue time means a request that already waited out a previous
            // flush's decode is not made to wait a fresh window on top.
            let has_stream = queue.pending.iter().any(|r| r.command.is_stream());
            if queue.pending.len() < config.max_batch && !queue.closed && !has_stream {
                let deadline = queue
                    .pending
                    .front()
                    .expect("pending is non-empty here")
                    .enqueued
                    + config.max_batch_delay;
                while queue.pending.len() < config.max_batch && !queue.closed {
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    let (guard, _timeout) = shared
                        .wakeup
                        .wait_timeout(queue, deadline - now)
                        .expect("request queue lock poisoned");
                    queue = guard;
                    if queue.pending.iter().any(|r| r.command.is_stream()) {
                        break;
                    }
                }
            }
            let take = queue.pending.len().min(config.max_batch);
            queue.pending.drain(..take).collect::<Vec<Request>>()
        };

        // Work outside the lock so submissions stay non-blocking.  Commands
        // run in arrival order: whole-utterance decodes stream through the
        // worker's one long-lived decoder (`decode_batch_with`'s
        // amortisation, unrolled per request so a bad utterance fails alone
        // instead of poisoning its batch neighbours), and stream commands
        // advance their session's own incremental state.
        let c = &shared.counters;
        c.batches.fetch_add(1, Ordering::Relaxed);
        c.largest_batch.fetch_max(batch.len(), Ordering::Relaxed);
        for request in batch {
            match &request.command {
                Command::Decode { features, slot } => {
                    let outcome = recognizer
                        .decode_features_with(features, &mut decoder)
                        .map_err(ServeError::from);
                    record_outcome(shared, &outcome);
                    slot.fulfil(outcome);
                }
                Command::StreamOpen { id, state } => {
                    let entry = recognizer
                        .begin_session()
                        .map(|session| (session, Arc::clone(state)))
                        .map_err(ServeError::from);
                    sessions.insert(*id, entry);
                }
                Command::StreamPush { id, chunk } => {
                    c.stream_chunks.fetch_add(1, Ordering::Relaxed);
                    if let Some(entry) = sessions.get_mut(id) {
                        if let Ok((session, state)) = entry {
                            match session.push_chunk(chunk) {
                                Ok(()) => state.store(session.partial()),
                                // The session degrades to its first error;
                                // finish() will deliver it.
                                Err(e) => *entry = Err(ServeError::from(e)),
                            }
                        }
                    }
                }
                Command::StreamFinish { id, slot } => {
                    let outcome = match sessions.remove(id) {
                        Some(Ok((session, _state))) => session.finish().map_err(ServeError::from),
                        Some(Err(e)) => Err(e),
                        // Unreachable through the handle API (open precedes
                        // finish in queue order); fail typed, not by hanging.
                        None => Err(ServeError::Closed),
                    };
                    record_outcome(shared, &outcome);
                    slot.fulfil(outcome);
                }
                Command::StreamCancel { id } => {
                    // The client dropped its handle: discard the session's
                    // decoder state.  No result, no completed/failed tick.
                    sessions.remove(id);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block_on;
    use asr_core::{DecodeError, DecoderConfig};
    use asr_corpus::{SyntheticTask, TaskConfig, TaskGenerator};

    fn task() -> SyntheticTask {
        TaskGenerator::new(77)
            .generate(&TaskConfig::tiny())
            .unwrap()
    }

    fn recognizer(task: &SyntheticTask, config: DecoderConfig) -> Recognizer {
        Recognizer::new(
            task.acoustic_model.clone(),
            task.dictionary.clone(),
            task.language_model.clone(),
            config,
        )
        .unwrap()
    }

    #[test]
    fn serves_requests_and_matches_direct_decode() {
        let task = task();
        let rec = recognizer(&task, DecoderConfig::simd());
        let direct = recognizer(&task, DecoderConfig::simd());
        let server = AsrServer::spawn(rec, ServeConfig::default()).unwrap();
        let utterances: Vec<_> = (0..6)
            .map(|seed| task.synthesize_utterance(1, 0.2, seed).0)
            .collect();
        let futures: Vec<_> = utterances
            .iter()
            .map(|u| server.submit(u.clone()).unwrap())
            .collect();
        let want = direct.decode_batch(&utterances).unwrap();
        for (future, want) in futures.into_iter().zip(&want) {
            let got = future.wait().unwrap();
            assert_eq!(got.hypothesis, want.hypothesis);
            assert_eq!(got.stats.num_frames(), want.stats.num_frames());
        }
        let stats = server.stats();
        assert_eq!(stats.submitted, 6);
        assert_eq!(stats.completed, 6);
        assert_eq!(stats.failed, 0);
        assert!(stats.batches >= 1);
        assert!(stats.largest_batch >= 1);
        assert!(stats.mean_batch_size() >= 1.0);
        // Software backend → no hardware report stream.
        assert!(server.hardware_report().is_none());
        server.close();
    }

    #[test]
    fn hardware_stream_report_accumulates() {
        let task = task();
        let server = AsrServer::spawn(
            recognizer(&task, DecoderConfig::hardware(2)),
            ServeConfig::default(),
        )
        .unwrap();
        let (features, _) = task.synthesize_utterance(1, 0.2, 3);
        let frames = features.len();
        let a = server.submit(features.clone()).unwrap();
        let b = server.submit(features).unwrap();
        a.wait().unwrap();
        b.wait().unwrap();
        let report = server.hardware_report().expect("hardware stream report");
        assert_eq!(report.frames, 2 * frames);
    }

    #[test]
    fn queue_full_is_typed_backpressure_not_a_drop() {
        let task = task();
        // A deliberately tiny queue and a long coalescing window so the
        // worker is still waiting while we overfill.
        let server = AsrServer::spawn(
            recognizer(&task, DecoderConfig::simd()),
            ServeConfig {
                max_pending: 2,
                max_batch: 64,
                max_batch_delay: std::time::Duration::from_millis(250),
            },
        )
        .unwrap();
        let (features, _) = task.synthesize_utterance(1, 0.2, 1);
        let mut accepted = Vec::new();
        let mut rejections = 0;
        for _ in 0..20 {
            match server.submit(features.clone()) {
                Ok(future) => accepted.push(future),
                Err(ServeError::QueueFull { capacity }) => {
                    assert_eq!(capacity, 2);
                    rejections += 1;
                }
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        assert!(rejections > 0, "the bound must push back");
        let stats = server.stats();
        assert_eq!(stats.rejected, rejections);
        // Every *accepted* request completes successfully — backpressure
        // refuses at the door, it never drops admitted work.
        let accepted_count = accepted.len() as u64;
        for future in accepted {
            assert!(future.wait().is_ok());
        }
        assert_eq!(server.stats().completed, accepted_count);
    }

    #[test]
    fn close_drains_accepted_requests_then_rejects_new_ones() {
        let task = task();
        let server = AsrServer::spawn(
            recognizer(&task, DecoderConfig::simd()),
            ServeConfig {
                max_batch_delay: std::time::Duration::from_millis(100),
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let (features, reference) = task.synthesize_utterance(1, 0.2, 5);
        let futures: Vec<_> = (0..4)
            .map(|_| server.submit(features.clone()).unwrap())
            .collect();
        server.close();
        for future in futures {
            // Accepted before close → decoded during the drain, not failed.
            assert_eq!(future.wait().unwrap().hypothesis.words, reference);
        }
    }

    #[test]
    fn submissions_after_close_fail_closed() {
        let task = task();
        let rec = recognizer(&task, DecoderConfig::simd());
        let server = AsrServer::spawn(rec, ServeConfig::default()).unwrap();
        // Close via the explicit path, keeping a handle: mimic with drop
        // ordering instead — mark closed through a second scope.
        let (features, _) = task.synthesize_utterance(1, 0.2, 2);
        {
            // Mark the shared queue closed exactly as shutdown does.
            server.lock_queue().closed = true;
        }
        assert!(matches!(server.submit(features), Err(ServeError::Closed)));
    }

    #[test]
    fn a_bad_utterance_fails_alone_without_poisoning_the_batch() {
        let task = task();
        let dim = task.acoustic_model.feature_dim();
        let server = AsrServer::spawn(
            recognizer(&task, DecoderConfig::simd()),
            ServeConfig {
                // Force everything into one coalesced batch.
                max_batch: 8,
                max_batch_delay: std::time::Duration::from_millis(100),
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let (good, reference) = task.synthesize_utterance(1, 0.2, 4);
        let bad = vec![vec![0.0f32; dim + 1]];
        let first = server.submit(good.clone()).unwrap();
        let poison = server.submit(bad).unwrap();
        let last = server.submit(good).unwrap();
        assert_eq!(first.wait().unwrap().hypothesis.words, reference);
        assert!(matches!(
            poison.wait(),
            Err(ServeError::Decode(DecodeError::DimensionMismatch { .. }))
        ));
        assert_eq!(last.wait().unwrap().hypothesis.words, reference);
        let stats = server.stats();
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.failed, 1);
    }

    #[test]
    fn a_dying_worker_closes_the_queue_and_fails_pending_futures() {
        // Drive the exit guard directly: whatever takes the batcher down
        // (panic included), the queue must close and pending futures must
        // resolve instead of hanging.
        let shared = Shared {
            queue: Mutex::new(Queue::default()),
            wakeup: Condvar::new(),
            counters: Counters::default(),
            hardware: Mutex::new(None),
        };
        let slot = Slot::new();
        shared.queue.lock().unwrap().pending.push_back(Request {
            command: Command::Decode {
                features: Vec::new(),
                slot: Arc::clone(&slot),
            },
            enqueued: Instant::now(),
        });
        let future = DecodeFuture::new(slot);
        drop(CloseOnExit(&shared));
        assert!(shared.queue.lock().unwrap().closed);
        assert!(matches!(future.wait(), Err(ServeError::Closed)));
    }

    #[test]
    fn stream_session_matches_offline_decode() {
        let task = task();
        let direct = recognizer(&task, DecoderConfig::simd());
        let server = AsrServer::spawn(
            recognizer(&task, DecoderConfig::simd()),
            ServeConfig::default(),
        )
        .unwrap();
        let (features, reference) = task.synthesize_utterance(2, 0.2, 21);
        let offline = direct.decode_features(&features).unwrap();

        let handle = server.open_stream().unwrap();
        for chunk in features.chunks(3) {
            handle.push_chunk(chunk).unwrap();
        }
        let result = handle.finish().unwrap().wait().unwrap();
        assert_eq!(result.hypothesis.words, reference);
        assert_eq!(result.hypothesis, offline.hypothesis);
        assert_eq!(result.best_score.raw(), offline.best_score.raw());
        assert_eq!(result.stats.num_frames(), features.len());
        let stats = server.stats();
        assert_eq!(stats.stream_sessions, 1);
        assert_eq!(stats.stream_chunks as usize, features.len().div_ceil(3));
        assert_eq!(stats.completed, 1);
        // The finish counted as submitted work: completed never outruns it.
        assert_eq!(stats.submitted, 1);
        server.close();
    }

    #[test]
    fn dropped_stream_handles_cancel_their_worker_sessions() {
        let task = task();
        let server = AsrServer::spawn(
            recognizer(&task, DecoderConfig::simd()),
            ServeConfig::default(),
        )
        .unwrap();
        let (features, reference) = task.synthesize_utterance(1, 0.2, 81);
        {
            let handle = server.open_stream().unwrap();
            handle.push_chunk(&features).unwrap();
            // Dropped here without finish: the worker discards the session.
        }
        // Subsequent traffic is unaffected, and the abandoned session never
        // produced a result tick.
        let got = server.submit(features.clone()).unwrap().wait().unwrap();
        assert_eq!(got.hypothesis.words, reference);
        let stats = server.stats();
        assert_eq!(stats.stream_sessions, 1);
        assert_eq!(stats.submitted, 1);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.failed, 0);
        server.close();
    }

    #[test]
    fn interleaved_streams_and_batch_requests_stay_isolated() {
        let task = task();
        let direct = recognizer(&task, DecoderConfig::simd());
        let server = AsrServer::spawn(
            recognizer(&task, DecoderConfig::simd()),
            ServeConfig::default(),
        )
        .unwrap();
        let (first, first_ref) = task.synthesize_utterance(1, 0.2, 31);
        let (second, second_ref) = task.synthesize_utterance(2, 0.2, 32);
        let (batch_utt, batch_ref) = task.synthesize_utterance(1, 0.2, 33);
        let want_first = direct.decode_features(&first).unwrap();
        let want_second = direct.decode_features(&second).unwrap();

        // Two sessions interleaved chunk by chunk, with a whole-utterance
        // request racing through the same queue.
        let a = server.open_stream().unwrap();
        let b = server.open_stream().unwrap();
        assert_ne!(a.id(), b.id());
        let batch_future = server.submit(batch_utt).unwrap();
        let mut ai = first.chunks(2);
        let mut bi = second.chunks(2);
        loop {
            match (ai.next(), bi.next()) {
                (None, None) => break,
                (chunk_a, chunk_b) => {
                    if let Some(chunk) = chunk_a {
                        a.push_chunk(chunk).unwrap();
                    }
                    if let Some(chunk) = chunk_b {
                        b.push_chunk(chunk).unwrap();
                    }
                }
            }
        }
        let got_a = a.finish().unwrap().wait().unwrap();
        let got_b = b.finish().unwrap().wait().unwrap();
        assert_eq!(got_a.hypothesis.words, first_ref);
        assert_eq!(got_b.hypothesis.words, second_ref);
        assert_eq!(got_a.hypothesis, want_first.hypothesis);
        assert_eq!(got_b.hypothesis, want_second.hypothesis);
        assert_eq!(batch_future.wait().unwrap().hypothesis.words, batch_ref);
        assert_eq!(server.stats().completed, 3);
    }

    #[test]
    fn stream_partials_are_published_and_prefix_consistent() {
        let task = task();
        let server = AsrServer::spawn(
            recognizer(&task, DecoderConfig::simd()),
            ServeConfig::default(),
        )
        .unwrap();
        let (features, reference) = task.synthesize_utterance(3, 0.2, 41);
        let handle = server.open_stream().unwrap();
        assert_eq!(handle.partial(), PartialHypothesis::default());
        let mut previous = PartialHypothesis::default();
        for chunk in features.chunks(4) {
            handle.push_chunk(chunk).unwrap();
            // The worker publishes asynchronously; wait for it to catch up
            // so the snapshot is deterministic.
            while handle.partial().frames < previous.frames + chunk.len() {
                std::thread::yield_now();
            }
            let partial = handle.partial();
            assert!(partial.words.starts_with(&previous.words));
            previous = partial;
        }
        assert!(!previous.words.is_empty());
        let result = handle.finish().unwrap().wait().unwrap();
        assert_eq!(result.hypothesis.words, reference);
    }

    #[test]
    fn empty_stream_session_resolves_to_the_typed_empty_result() {
        let task = task();
        let server = AsrServer::spawn(
            recognizer(&task, DecoderConfig::simd()),
            ServeConfig::default(),
        )
        .unwrap();
        let handle = server.open_stream().unwrap();
        let result = handle.finish().unwrap().wait().unwrap();
        assert!(result.is_empty());
        assert_eq!(server.stats().completed, 1);
    }

    #[test]
    fn a_bad_chunk_fails_the_session_at_finish_not_its_neighbours() {
        let task = task();
        let dim = task.acoustic_model.feature_dim();
        let server = AsrServer::spawn(
            recognizer(&task, DecoderConfig::simd()),
            ServeConfig::default(),
        )
        .unwrap();
        let (good, reference) = task.synthesize_utterance(1, 0.2, 51);
        let poisoned = server.open_stream().unwrap();
        let healthy = server.open_stream().unwrap();
        poisoned.push_chunk(&[vec![0.0; dim + 2]]).unwrap();
        // Later pushes to the failed session are absorbed, not decoded.
        poisoned.push_chunk(&good).unwrap();
        healthy.push_chunk(&good).unwrap();
        assert!(matches!(
            poisoned.finish().unwrap().wait(),
            Err(ServeError::Decode(DecodeError::DimensionMismatch { .. }))
        ));
        assert_eq!(
            healthy.finish().unwrap().wait().unwrap().hypothesis.words,
            reference
        );
        let stats = server.stats();
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.failed, 1);
    }

    #[test]
    fn streams_cannot_be_opened_or_pushed_after_close() {
        let task = task();
        let server = AsrServer::spawn(
            recognizer(&task, DecoderConfig::simd()),
            ServeConfig::default(),
        )
        .unwrap();
        let (features, _) = task.synthesize_utterance(1, 0.2, 61);
        let handle = server.open_stream().unwrap();
        handle.push_chunk(&features).unwrap();
        {
            // Mark the shared queue closed exactly as shutdown does.
            server.lock_queue().closed = true;
        }
        assert!(matches!(
            handle.push_chunk(&features),
            Err(ServeError::Closed)
        ));
        assert!(matches!(server.open_stream(), Err(ServeError::Closed)));
        assert!(matches!(handle.finish(), Err(ServeError::Closed)));
    }

    #[test]
    fn stream_hardware_reports_fold_into_the_server_report() {
        let task = task();
        let server = AsrServer::spawn(
            recognizer(&task, DecoderConfig::hardware(2)),
            ServeConfig::default(),
        )
        .unwrap();
        let (features, _) = task.synthesize_utterance(1, 0.2, 71);
        let frames = features.len();
        let handle = server.open_stream().unwrap();
        handle.push_chunk(&features).unwrap();
        handle.finish().unwrap().wait().unwrap();
        let direct = server.submit(features).unwrap();
        direct.wait().unwrap();
        let report = server.hardware_report().expect("merged stream report");
        assert_eq!(report.frames, 2 * frames);
    }

    #[test]
    fn futures_are_pollable_on_an_executor() {
        let task = task();
        let server = AsrServer::spawn(
            recognizer(&task, DecoderConfig::simd()),
            ServeConfig::default(),
        )
        .unwrap();
        let (features, reference) = task.synthesize_utterance(2, 0.2, 6);
        let future = server.submit(features).unwrap();
        let result = block_on(future).unwrap();
        assert_eq!(result.hypothesis.words, reference);
    }

    #[test]
    fn spawn_rejects_invalid_configs_up_front() {
        let task = task();
        let bad_serve = AsrServer::spawn(
            recognizer(&task, DecoderConfig::simd()),
            ServeConfig {
                max_batch: 0,
                ..ServeConfig::default()
            },
        );
        assert!(matches!(bad_serve, Err(ServeError::InvalidConfig(_))));
        // A recogniser whose backend cannot build fails at spawn, not on the
        // first request.  (An invalid SoC config is rejected by Recognizer::new
        // already, so exercise the path through a valid-at-construction but
        // unbuildable sharded config is impossible — instead check the
        // spawn-time decoder build succeeds for a sharded backend.)
        let sharded = AsrServer::spawn(
            recognizer(&task, DecoderConfig::sharded_hardware(2)),
            ServeConfig::default(),
        )
        .unwrap();
        let (features, reference) = task.synthesize_utterance(1, 0.2, 9);
        assert_eq!(
            sharded
                .submit(features)
                .unwrap()
                .wait()
                .unwrap()
                .hypothesis
                .words,
            reference
        );
        assert!(sharded.hardware_report().is_some());
    }
}
