//! # asr-serve — the async batched, multi-model serving front
//!
//! The paper's SoC decodes one fixed LVCSR task; this crate turns the
//! reproduction into a traffic-serving system for *heterogeneous* traffic.
//! A [`ModelRegistry`] names the models one server hosts (dictation, a
//! command grammar, per-domain LMs — each an `Arc`-held [`Recognizer`]);
//! callers [`submit`] a [`DecodeRequest`] carrying feature frames plus
//! routing (model name, tenant) into a **bounded request queue** and get
//! back a [`DecodeFuture`]; M decoder workers ([`ServeConfig::workers`])
//! drain the queue, each coalescing pending requests into **per-model
//! micro-batches** and streaming them through a long-lived per-model scorer
//! (flushing on batch size or deadline, whichever comes first) — the
//! amortisation of [`Recognizer::decode_batch_with`] per worker and per
//! model, with per-request error isolation.  Under a sharded backend each
//! worker's shard pools stay warm across utterances, so a warm server
//! decodes indefinitely with zero thread spawns.
//!
//! ```text
//!  clients ──DecodeRequest{features, model?, tenant?}──► admission
//!     ▲         │ registry: name ──► Arc<ModelVersion>  (version pinned
//!     │         │ quotas:  queue bound, per-model, per-tenant → QueueFull)
//!     │         ▼
//!     │      bounded queue ──┬─► worker 0 ─► per-(model, version) decoders
//!     │       (FIFO, typed   ├─► worker 1 ─►   (micro-batches never mix
//!     │        backpressure) └─► worker M ─►    models or versions)
//!     └── DecodeFuture (std Future and/or blocking wait()) ◄──┘
//! ```
//!
//! **Routing** is part of the request, not the server: an unnamed request
//! goes to the registry's default model, so single-model callers still write
//! `server.submit(features)`.  **Hot-swap**
//! ([`AsrServer::swap_model`]) replaces the `Arc` a name resolves to;
//! requests admitted before the swap finish on the version they were
//! admitted under (their `Arc` pins it), new admissions see the new version,
//! and the queue never drains.  **Admission control** is layered: the global
//! `max_pending` bound, an optional per-model quota, and an optional
//! per-tenant quota — each rejection is a typed [`ServeError::QueueFull`]
//! naming the [`QueueScope`] that was hit.  [`ServeStats`] and hardware
//! reports split per model ([`AsrServer::model_stats`],
//! [`AsrServer::model_hardware_report`]).
//!
//! Whole-utterance requests go to whichever worker is idle; stream sessions
//! are **pinned** to one worker (`id % workers`), which keeps each session's
//! chunks in order while different sessions fan out across workers.
//!
//! Overload is **typed, not silent**: when a scope is full, [`submit`]
//! returns [`ServeError::QueueFull`] immediately — the request is never
//! dropped on the floor and the caller decides whether to retry, shed or
//! block.  The server never cancels accepted work: every accepted request's
//! future resolves, and requests still queued at shutdown are drained before
//! the worker exits.
//!
//! The crate is executor-agnostic by construction: [`DecodeFuture`]
//! implements [`std::future::Future`] so it can be awaited on any executor,
//! and also offers a blocking [`DecodeFuture::wait`] for synchronous callers.
//! A minimal [`block_on`] shim ships for environments without an async
//! runtime (this workspace builds offline with no external dependencies).
//!
//! [`submit`]: AsrServer::submit
//! [`Recognizer`]: asr_core::Recognizer
//! [`Recognizer::decode_batch_with`]: asr_core::Recognizer::decode_batch_with
//!
//! # Example
//!
//! Two models co-resident in one server, routed by name, hot-swapped live:
//!
//! ```
//! use asr_corpus::{TaskConfig, TaskGenerator};
//! use asr_core::{DecoderConfig, Recognizer};
//! use asr_serve::{block_on, AsrServer, DecodeRequest, ModelRegistry, ServeConfig};
//!
//! fn recognizer(seed: u64) -> Recognizer {
//!     let task = TaskGenerator::new(seed).generate(&TaskConfig::tiny()).unwrap();
//!     Recognizer::new(
//!         task.acoustic_model.clone(),
//!         task.dictionary.clone(),
//!         task.language_model.clone(),
//!         DecoderConfig::simd(),
//!     )
//!     .unwrap()
//! }
//!
//! let task = TaskGenerator::new(9).generate(&TaskConfig::tiny()).unwrap();
//! let registry = ModelRegistry::new()
//!     .register("dictation", recognizer(9))
//!     .unwrap()
//!     .register("voice_command", recognizer(40))
//!     .unwrap()
//!     .default_model("dictation");
//! let server = AsrServer::spawn_registry(registry, ServeConfig::default()).unwrap();
//!
//! // Enqueue a few utterances; the batcher coalesces same-model requests
//! // into one decode micro-batch over the worker's warmed scorer.
//! let pending: Vec<_> = (0..4)
//!     .map(|seed| {
//!         let (features, reference) = task.synthesize_utterance(1, 0.2, seed);
//!         let request = DecodeRequest::new(features).model("dictation");
//!         (server.submit(request).unwrap(), reference)
//!     })
//!     .collect();
//! for (future, reference) in pending {
//!     // A DecodeFuture is a std Future — await it on any executor (the
//!     // bundled block_on here), or call .wait() to block synchronously.
//!     let result = block_on(future).unwrap();
//!     assert_eq!(result.hypothesis.words, reference);
//! }
//! assert_eq!(server.stats().completed, 4);
//! assert_eq!(server.model_stats("dictation").unwrap().completed, 4);
//! assert_eq!(server.model_stats("voice_command").unwrap().completed, 0);
//!
//! // Hot-swap "dictation" to a retrained version — no drain, no downtime.
//! assert_eq!(server.swap_model("dictation", recognizer(9)).unwrap(), 2);
//! assert_eq!(server.model_version("dictation"), Some(2));
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod future;
mod registry;
mod request;
mod server;

pub use future::{block_on, DecodeFuture};
pub use registry::{ModelRegistry, DEFAULT_MODEL};
pub use request::{DecodeRequest, StreamOptions};
pub use server::{AsrServer, ServeStats, StreamHandle};

// Streaming clients read partial hypotheses through the serve layer too; the
// type is asr-core's, re-exported so callers need only this crate.
pub use asr_core::PartialHypothesis;

// The observability types the observed spawn paths and metrics snapshot
// speak in; re-exported so serving callers need only this crate.
pub use asr_obs::{MetricsRegistry, MetricsSnapshot, Telemetry};

use asr_core::DecodeError;
use std::time::Duration;

/// Configuration of the serving front.
///
/// Construct with the builders —
/// `ServeConfig::default().workers(4).max_batch(16)` — the struct is
/// `#[non_exhaustive]`, so fields may be added without breaking callers.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct ServeConfig {
    /// Bound on requests waiting in the queue (accepted but not yet decoding).
    /// When the queue is full, [`AsrServer::submit`] returns
    /// [`ServeError::QueueFull`] instead of blocking or dropping — the typed
    /// backpressure signal.
    pub max_pending: usize,
    /// The micro-batcher flushes as soon as this many requests are pending.
    pub max_batch: usize,
    /// …or when the oldest pending request has waited this long, whichever
    /// comes first.  The knob trades per-request latency against batch
    /// amortisation.
    pub max_batch_delay: Duration,
    /// Number of decoder workers draining the queue.  Each worker owns its
    /// own long-lived per-model decoders (with the backend's shard threads
    /// underneath), so `workers` independent micro-batches decode
    /// concurrently; stream sessions are pinned to one worker each so their
    /// chunks stay ordered.  The default of 1 reproduces the single-batcher
    /// behaviour exactly.
    pub workers: usize,
    /// Per-model admission quota *within* `max_pending`: at most this many
    /// queued requests per model, so one model's burst cannot starve its
    /// neighbours.  `None` (the default) disables the per-model scope.
    pub model_quota: Option<usize>,
    /// Per-tenant admission quota within `max_pending`, counted for requests
    /// that name a tenant ([`DecodeRequest::tenant`]).  `None` (the default)
    /// disables the per-tenant scope.
    pub tenant_quota: Option<usize>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_pending: 64,
            max_batch: 8,
            max_batch_delay: Duration::from_millis(2),
            workers: 1,
            model_quota: None,
            tenant_quota: None,
        }
    }
}

impl ServeConfig {
    /// Sets the queue bound (builder style).
    #[must_use]
    pub fn max_pending(mut self, max_pending: usize) -> Self {
        self.max_pending = max_pending;
        self
    }

    /// Sets the micro-batch flush size (builder style).
    #[must_use]
    pub fn max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch;
        self
    }

    /// Sets the micro-batch flush deadline (builder style).
    #[must_use]
    pub fn max_batch_delay(mut self, max_batch_delay: Duration) -> Self {
        self.max_batch_delay = max_batch_delay;
        self
    }

    /// Sets the number of decoder workers (builder style):
    /// `ServeConfig::default().workers(4)` is a four-lane serving front.
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the per-model admission quota (builder style).
    #[must_use]
    pub fn model_quota(mut self, quota: usize) -> Self {
        self.model_quota = Some(quota);
        self
    }

    /// Sets the per-tenant admission quota (builder style).
    #[must_use]
    pub fn tenant_quota(mut self, quota: usize) -> Self {
        self.tenant_quota = Some(quota);
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] when the queue bound, batch
    /// size, worker count, or a set quota is zero.
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.max_pending == 0 {
            return Err(ServeError::InvalidConfig("max_pending must be >= 1".into()));
        }
        if self.max_batch == 0 {
            return Err(ServeError::InvalidConfig("max_batch must be >= 1".into()));
        }
        if self.workers == 0 {
            return Err(ServeError::InvalidConfig("workers must be >= 1".into()));
        }
        if self.model_quota == Some(0) {
            return Err(ServeError::InvalidConfig(
                "model_quota must be >= 1 when set".into(),
            ));
        }
        if self.tenant_quota == Some(0) {
            return Err(ServeError::InvalidConfig(
                "tenant_quota must be >= 1 when set".into(),
            ));
        }
        Ok(())
    }
}

/// Which admission scope rejected a request — carried by
/// [`ServeError::QueueFull`] so callers can tell *shared* overload (shed or
/// retry anywhere) from a *per-model* or *per-tenant* quota (reroute, or
/// back off just that traffic class).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum QueueScope {
    /// The global `max_pending` bound across all models and tenants.
    Queue,
    /// The named model's [`ServeConfig::model_quota`].
    Model(String),
    /// The named tenant's [`ServeConfig::tenant_quota`].
    Tenant(String),
}

impl core::fmt::Display for QueueScope {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            QueueScope::Queue => write!(f, "request queue"),
            QueueScope::Model(model) => write!(f, "model '{model}' quota"),
            QueueScope::Tenant(tenant) => write!(f, "tenant '{tenant}' quota"),
        }
    }
}

/// Errors produced by the serving front.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// An admission scope is full — the typed backpressure/overload signal.
    /// The request was **not** enqueued (and not dropped from the queue);
    /// retry later or shed load upstream.
    #[non_exhaustive]
    QueueFull {
        /// The configured bound of the scope that was hit (`max_pending`
        /// for [`QueueScope::Queue`], the quota otherwise).
        capacity: usize,
        /// Which admission scope rejected the request: the shared queue, a
        /// model quota, or a tenant quota.
        scope: QueueScope,
    },
    /// The request named a model the registry does not serve.
    #[non_exhaustive]
    UnknownModel {
        /// The unrecognised model name.
        model: String,
    },
    /// The server is shutting down (or its worker died); no new requests are
    /// accepted and unstarted work resolves to this error.
    Closed,
    /// The underlying decode failed; the typed [`DecodeError`] is preserved.
    Decode(DecodeError),
    /// The serving configuration was invalid.
    InvalidConfig(String),
}

impl core::fmt::Display for ServeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ServeError::QueueFull { capacity, scope } => {
                write!(f, "{scope} full ({capacity} pending)")
            }
            ServeError::UnknownModel { model } => {
                write!(f, "unknown model '{model}'")
            }
            ServeError::Closed => write!(f, "server is closed"),
            ServeError::Decode(e) => write!(f, "decode failed: {e}"),
            ServeError::InvalidConfig(msg) => write!(f, "invalid serve config: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Decode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DecodeError> for ServeError {
    fn from(e: DecodeError) -> Self {
        ServeError::Decode(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation() {
        ServeConfig::default().validate().unwrap();
        assert!(ServeConfig::default().max_pending(0).validate().is_err());
        assert!(ServeConfig::default().max_batch(0).validate().is_err());
        assert!(ServeConfig::default().workers(0).validate().is_err());
        assert!(ServeConfig::default().model_quota(0).validate().is_err());
        assert!(ServeConfig::default().tenant_quota(0).validate().is_err());
    }

    #[test]
    fn config_builders_cover_every_field() {
        let config = ServeConfig::default()
            .max_pending(128)
            .max_batch(16)
            .max_batch_delay(Duration::from_millis(5))
            .workers(4)
            .model_quota(32)
            .tenant_quota(8);
        assert_eq!(config.max_pending, 128);
        assert_eq!(config.max_batch, 16);
        assert_eq!(config.max_batch_delay, Duration::from_millis(5));
        assert_eq!(config.workers, 4);
        assert_eq!(config.model_quota, Some(32));
        assert_eq!(config.tenant_quota, Some(8));
        config.validate().unwrap();
    }

    #[test]
    fn error_display_and_source() {
        use std::error::Error;
        let full = ServeError::QueueFull {
            capacity: 8,
            scope: QueueScope::Queue,
        };
        assert!(full.to_string().contains('8'));
        assert!(ServeError::QueueFull {
            capacity: 2,
            scope: QueueScope::Model("dictation".into()),
        }
        .to_string()
        .contains("dictation"));
        assert!(ServeError::QueueFull {
            capacity: 2,
            scope: QueueScope::Tenant("acme".into()),
        }
        .to_string()
        .contains("acme"));
        assert!(ServeError::UnknownModel {
            model: "nope".into()
        }
        .to_string()
        .contains("nope"));
        assert!(!ServeError::Closed.to_string().is_empty());
        assert!(ServeError::InvalidConfig("x".into())
            .to_string()
            .contains('x'));
        let e: ServeError = DecodeError::InvalidConfig("beam".into()).into();
        assert!(matches!(e, ServeError::Decode(_)));
        assert!(e.source().is_some(), "typed decode source must survive");
        assert!(ServeError::Closed.source().is_none());
    }
}
