//! # asr-serve — the async batched serving front
//!
//! The paper's SoC decodes one utterance at a time; this crate turns the
//! reproduction into a traffic-serving system.  Callers [`submit`] utterances
//! into a **bounded request queue** and get back a [`DecodeFuture`]; M
//! decoder workers ([`ServeConfig::workers`]) drain the queue, each
//! coalescing pending requests into micro-batches and streaming them through
//! its **own long-lived scorer** (flushing on batch size or deadline,
//! whichever comes first) — the amortisation of
//! [`Recognizer::decode_batch_with`] per worker, with per-request error
//! isolation, so every backend's model-level caches pay off across the whole
//! request stream just as `decode_batch` pays off for a single caller.
//! Under a sharded backend each worker's shard pool stays warm across
//! utterances, so a warm server decodes indefinitely with zero thread
//! spawns.
//!
//! ```text
//!  clients ──submit()──► bounded queue ──┬─► worker 0 ─► decoder (N shards)
//!     ▲                   (backpressure:  ├─► worker 1 ─► decoder (N shards)
//!     │                    QueueFull)     └─► worker M ─► decoder (N shards)
//!     └──────── DecodeFuture (std Future and/or blocking wait()) ◄──┘
//! ```
//!
//! Whole-utterance requests go to whichever worker is idle; stream sessions
//! are **pinned** to one worker (`id % workers`), which keeps each session's
//! chunks in order while different sessions fan out across workers.
//!
//! Overload is **typed, not silent**: when the queue is full, [`submit`]
//! returns [`ServeError::QueueFull`] immediately — the request is never
//! dropped on the floor and the caller decides whether to retry, shed or
//! block.  The server never cancels accepted work: every accepted request's
//! future resolves, and requests still queued at shutdown are drained before
//! the worker exits.
//!
//! The crate is executor-agnostic by construction: [`DecodeFuture`]
//! implements [`std::future::Future`] so it can be awaited on any executor,
//! and also offers a blocking [`DecodeFuture::wait`] for synchronous callers.
//! A minimal [`block_on`] shim ships for environments without an async
//! runtime (this workspace builds offline with no external dependencies).
//!
//! Pair the front with a sharded backend
//! ([`ScoringBackendKind::Sharded`](asr_core::ScoringBackendKind::Sharded))
//! and the queue feeds a scorer that splits every frame's active-senone set
//! across N SoC instances — scale-up and scale-out composed through the same
//! [`SenoneScorer`](asr_core::SenoneScorer) seam.
//!
//! [`submit`]: AsrServer::submit
//! [`Recognizer::decode_batch_with`]: asr_core::Recognizer::decode_batch_with
//!
//! # Example
//!
//! ```
//! use asr_corpus::{TaskConfig, TaskGenerator};
//! use asr_core::{DecoderConfig, Recognizer};
//! use asr_serve::{block_on, AsrServer, ServeConfig};
//!
//! let task = TaskGenerator::new(9).generate(&TaskConfig::tiny()).unwrap();
//! let recognizer = Recognizer::new(
//!     task.acoustic_model.clone(),
//!     task.dictionary.clone(),
//!     task.language_model.clone(),
//!     DecoderConfig::simd(),
//! )
//! .unwrap();
//! let server = AsrServer::spawn(recognizer, ServeConfig::default()).unwrap();
//!
//! // Enqueue a few utterances; the batcher coalesces them into one
//! // decode_batch call over the worker's warmed scorer.
//! let pending: Vec<_> = (0..4)
//!     .map(|seed| {
//!         let (features, reference) = task.synthesize_utterance(1, 0.2, seed);
//!         (server.submit(features).unwrap(), reference)
//!     })
//!     .collect();
//! for (future, reference) in pending {
//!     // A DecodeFuture is a std Future — await it on any executor (the
//!     // bundled block_on here), or call .wait() to block synchronously.
//!     let result = block_on(future).unwrap();
//!     assert_eq!(result.hypothesis.words, reference);
//! }
//! assert_eq!(server.stats().completed, 4);
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod future;
mod server;

pub use future::{block_on, DecodeFuture};
pub use server::{AsrServer, ServeStats, StreamHandle};

// Streaming clients read partial hypotheses through the serve layer too; the
// type is asr-core's, re-exported so callers need only this crate.
pub use asr_core::PartialHypothesis;

use asr_core::DecodeError;
use std::time::Duration;

/// Configuration of the serving front.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Bound on requests waiting in the queue (accepted but not yet decoding).
    /// When the queue is full, [`AsrServer::submit`] returns
    /// [`ServeError::QueueFull`] instead of blocking or dropping — the typed
    /// backpressure signal.
    pub max_pending: usize,
    /// The micro-batcher flushes as soon as this many requests are pending.
    pub max_batch: usize,
    /// …or when the oldest pending request has waited this long, whichever
    /// comes first.  The knob trades per-request latency against batch
    /// amortisation.
    pub max_batch_delay: Duration,
    /// Number of decoder workers draining the queue.  Each worker owns its
    /// own long-lived decoder (with the backend's shard threads underneath),
    /// so `workers` independent micro-batches decode concurrently; stream
    /// sessions are pinned to one worker each so their chunks stay ordered.
    /// The default of 1 reproduces the single-batcher behaviour exactly.
    pub workers: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_pending: 64,
            max_batch: 8,
            max_batch_delay: Duration::from_millis(2),
            workers: 1,
        }
    }
}

impl ServeConfig {
    /// Sets the number of decoder workers (builder style):
    /// `ServeConfig::default().workers(4)` is a four-lane serving front.
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] when the queue bound, batch
    /// size, or worker count is zero.
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.max_pending == 0 {
            return Err(ServeError::InvalidConfig("max_pending must be >= 1".into()));
        }
        if self.max_batch == 0 {
            return Err(ServeError::InvalidConfig("max_batch must be >= 1".into()));
        }
        if self.workers == 0 {
            return Err(ServeError::InvalidConfig("workers must be >= 1".into()));
        }
        Ok(())
    }
}

/// Errors produced by the serving front.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The bounded request queue is full — the typed backpressure/overload
    /// signal.  The request was **not** enqueued (and not dropped from the
    /// queue); retry later or shed load upstream.
    QueueFull {
        /// The configured queue bound that was hit.
        capacity: usize,
    },
    /// The server is shutting down (or its worker died); no new requests are
    /// accepted and unstarted work resolves to this error.
    Closed,
    /// The underlying decode failed; the typed [`DecodeError`] is preserved.
    Decode(DecodeError),
    /// The serving configuration was invalid.
    InvalidConfig(String),
}

impl core::fmt::Display for ServeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ServeError::QueueFull { capacity } => {
                write!(f, "request queue full ({capacity} pending)")
            }
            ServeError::Closed => write!(f, "server is closed"),
            ServeError::Decode(e) => write!(f, "decode failed: {e}"),
            ServeError::InvalidConfig(msg) => write!(f, "invalid serve config: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Decode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DecodeError> for ServeError {
    fn from(e: DecodeError) -> Self {
        ServeError::Decode(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation() {
        ServeConfig::default().validate().unwrap();
        assert!(ServeConfig {
            max_pending: 0,
            ..ServeConfig::default()
        }
        .validate()
        .is_err());
        assert!(ServeConfig {
            max_batch: 0,
            ..ServeConfig::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn error_display_and_source() {
        use std::error::Error;
        assert!(ServeError::QueueFull { capacity: 8 }
            .to_string()
            .contains('8'));
        assert!(!ServeError::Closed.to_string().is_empty());
        assert!(ServeError::InvalidConfig("x".into())
            .to_string()
            .contains('x'));
        let e: ServeError = DecodeError::InvalidConfig("beam".into()).into();
        assert!(matches!(e, ServeError::Decode(_)));
        assert!(e.source().is_some(), "typed decode source must survive");
        assert!(ServeError::Closed.source().is_none());
    }
}
