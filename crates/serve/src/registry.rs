//! The model registry: named recognisers served side by side from one
//! [`AsrServer`](crate::AsrServer).
//!
//! One server, one model is not a deployment shape — dictation, command
//! grammars and per-domain language models are normally *co-resident*.  A
//! [`ModelRegistry`] names each decode task once at spawn time; requests
//! route by name ([`DecodeRequest::model`](crate::DecodeRequest::model)),
//! unnamed requests go to the registry's **default model**, and a name can
//! be [hot-swapped](crate::AsrServer::swap_model) to a new recogniser
//! version while the server keeps taking traffic.

use crate::ServeError;
use asr_core::Recognizer;
use std::sync::Arc;

/// Registration-ordered `(name, recogniser)` pairs.
pub(crate) type Models = Vec<(String, Arc<Recognizer>)>;

/// The model name used by [`AsrServer::spawn`](crate::AsrServer::spawn) and
/// by an unset [`ModelRegistry::default_model`] with a single registration —
/// single-model callers never spell a name.
pub const DEFAULT_MODEL: &str = "default";

/// One pinned version of a named model: what a request is admitted *under*.
///
/// Hot-swap replaces the `Arc<ModelVersion>` a name resolves to; everything
/// already holding a clone (queued requests, open stream sessions, a
/// worker's cached decoder key) keeps decoding this exact version.
#[derive(Debug)]
pub(crate) struct ModelVersion {
    /// The registered name (shared with the registry map key and stats).
    pub(crate) name: Arc<str>,
    /// Monotone per-name version counter: 1 at spawn, +1 per swap.
    pub(crate) version: u64,
    /// The recogniser this version decodes with.
    pub(crate) recognizer: Arc<Recognizer>,
}

/// A builder naming the models one [`AsrServer`](crate::AsrServer) serves.
///
/// Register each recogniser under a unique name, optionally pick the
/// default route, and hand the registry to
/// [`AsrServer::spawn_registry`](crate::AsrServer::spawn_registry).  When no
/// default is named, the first registered model is the default.
///
/// ```
/// # use asr_serve::ModelRegistry;
/// # use asr_core::{DecoderConfig, Recognizer};
/// # use asr_corpus::{TaskConfig, TaskGenerator};
/// # fn rec(seed: u64) -> Recognizer {
/// #     let task = TaskGenerator::new(seed).generate(&TaskConfig::tiny()).unwrap();
/// #     Recognizer::new(task.acoustic_model.clone(), task.dictionary.clone(),
/// #         task.language_model.clone(), DecoderConfig::simd()).unwrap()
/// # }
/// let registry = ModelRegistry::new()
///     .register("dictation", rec(9))
///     .unwrap()
///     .register("voice_command", rec(11))
///     .unwrap()
///     .default_model("dictation");
/// assert_eq!(registry.names(), ["dictation", "voice_command"]);
/// ```
#[derive(Debug, Default)]
pub struct ModelRegistry {
    models: Models,
    default_model: Option<String>,
}

impl ModelRegistry {
    /// An empty registry.  At least one model must be registered before
    /// spawning a server from it.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `recognizer` under `name`.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] for an empty name or a name
    /// registered twice.
    pub fn register(
        self,
        name: impl Into<String>,
        recognizer: Recognizer,
    ) -> Result<Self, ServeError> {
        self.register_shared(name, Arc::new(recognizer))
    }

    /// Registers an already-`Arc`-held recogniser under `name` — for models
    /// also decoded directly (the serve==direct property tests do this).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] for an empty name or a name
    /// registered twice.
    pub fn register_shared(
        mut self,
        name: impl Into<String>,
        recognizer: Arc<Recognizer>,
    ) -> Result<Self, ServeError> {
        let name = name.into();
        if name.is_empty() {
            return Err(ServeError::InvalidConfig(
                "model name must be non-empty".into(),
            ));
        }
        if self.models.iter().any(|(n, _)| *n == name) {
            return Err(ServeError::InvalidConfig(format!(
                "model '{name}' registered twice"
            )));
        }
        self.models.push((name, recognizer));
        Ok(self)
    }

    /// Names the model unnamed requests route to.  Defaults to the first
    /// registered model.
    #[must_use]
    pub fn default_model(mut self, name: impl Into<String>) -> Self {
        self.default_model = Some(name.into());
        self
    }

    /// The registered model names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.models.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Whether no model has been registered yet.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// Validates and decomposes the registry:
    /// `(registration-ordered models, default name)`.
    pub(crate) fn into_parts(self) -> Result<(Models, String), ServeError> {
        let Some(first) = self.models.first() else {
            return Err(ServeError::InvalidConfig(
                "registry must contain at least one model".into(),
            ));
        };
        let default = match self.default_model {
            Some(name) => {
                if !self.models.iter().any(|(n, _)| *n == name) {
                    return Err(ServeError::UnknownModel { model: name });
                }
                name
            }
            None => first.0.clone(),
        };
        Ok((self.models, default))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asr_core::DecoderConfig;
    use asr_corpus::{TaskConfig, TaskGenerator};

    fn recognizer() -> Recognizer {
        let task = TaskGenerator::new(7).generate(&TaskConfig::tiny()).unwrap();
        Recognizer::new(
            task.acoustic_model.clone(),
            task.dictionary.clone(),
            task.language_model.clone(),
            DecoderConfig::software(),
        )
        .unwrap()
    }

    #[test]
    fn duplicate_and_empty_names_are_rejected() {
        let registry = ModelRegistry::new().register("a", recognizer()).unwrap();
        assert!(matches!(
            registry.register("a", recognizer()),
            Err(ServeError::InvalidConfig(_))
        ));
        assert!(matches!(
            ModelRegistry::new().register("", recognizer()),
            Err(ServeError::InvalidConfig(_))
        ));
    }

    #[test]
    fn default_model_falls_back_to_first_registered() {
        let registry = ModelRegistry::new()
            .register("first", recognizer())
            .unwrap()
            .register("second", recognizer())
            .unwrap();
        assert_eq!(registry.len(), 2);
        assert!(!registry.is_empty());
        let (models, default) = registry.into_parts().unwrap();
        assert_eq!(default, "first");
        assert_eq!(models.len(), 2);
    }

    #[test]
    fn an_unregistered_default_and_an_empty_registry_are_typed_errors() {
        assert!(matches!(
            ModelRegistry::new().into_parts(),
            Err(ServeError::InvalidConfig(_))
        ));
        let registry = ModelRegistry::new()
            .register("a", recognizer())
            .unwrap()
            .default_model("missing");
        assert!(matches!(
            registry.into_parts(),
            Err(ServeError::UnknownModel { model }) if model == "missing"
        ));
    }
}
