//! Per-request completion: a slot the batcher fulfils exactly once, and the
//! [`DecodeFuture`] handle callers hold on to — pollable from any async
//! executor *and* blockingly waitable, so the serving front does not dictate
//! a runtime.

use crate::ServeError;
use asr_core::DecodeResult;
use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Condvar, Mutex};
use std::task::{Context, Poll, Wake, Waker};

/// The outcome of one served request.
pub(crate) type Outcome = Result<DecodeResult, ServeError>;

#[derive(Debug, Default)]
struct SlotState {
    outcome: Option<Outcome>,
    waker: Option<Waker>,
    fulfilled: bool,
}

/// Shared completion slot between the batcher (producer) and the
/// [`DecodeFuture`] (consumer).
#[derive(Debug, Default)]
pub(crate) struct Slot {
    state: Mutex<SlotState>,
    ready: Condvar,
}

impl Slot {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(Slot::default())
    }

    /// Completes the request; the first call wins, later calls are ignored
    /// (the shutdown safety net may race a normal completion).
    pub(crate) fn fulfil(&self, outcome: Outcome) {
        let mut state = self.state.lock().expect("slot lock poisoned");
        if state.fulfilled {
            return;
        }
        state.fulfilled = true;
        state.outcome = Some(outcome);
        if let Some(waker) = state.waker.take() {
            waker.wake();
        }
        self.ready.notify_all();
    }

    pub(crate) fn is_fulfilled(&self) -> bool {
        self.state.lock().expect("slot lock poisoned").fulfilled
    }
}

/// A pending decode: resolves to the request's [`DecodeResult`] (or the typed
/// [`ServeError`]) once the micro-batcher has served it.
///
/// The handle is deliberately dual-interface:
///
/// * it implements [`std::future::Future`], so it can be `.await`ed on any
///   executor (or driven by the bundled [`block_on`] shim);
/// * [`DecodeFuture::wait`] blocks the calling thread — the right tool for
///   synchronous clients and tests.
///
/// Every accepted request's future resolves: the server drains the queue on
/// shutdown and fails unserved requests with [`ServeError::Closed`] rather
/// than leaving a future dangling.
#[derive(Debug)]
pub struct DecodeFuture {
    slot: Arc<Slot>,
}

impl DecodeFuture {
    pub(crate) fn new(slot: Arc<Slot>) -> Self {
        DecodeFuture { slot }
    }

    /// Whether the result is already available (a `poll`/[`wait`] would not
    /// block).
    ///
    /// [`wait`]: DecodeFuture::wait
    pub fn is_ready(&self) -> bool {
        self.slot.is_fulfilled()
    }

    /// Blocks the calling thread until the request completes.
    pub fn wait(self) -> Outcome {
        let mut state = self.slot.state.lock().expect("slot lock poisoned");
        loop {
            if let Some(outcome) = state.outcome.take() {
                return outcome;
            }
            state = self.slot.ready.wait(state).expect("slot lock poisoned");
        }
    }
}

impl Future for DecodeFuture {
    type Output = Outcome;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut state = self.slot.state.lock().expect("slot lock poisoned");
        match state.outcome.take() {
            Some(outcome) => Poll::Ready(outcome),
            None => {
                state.waker = Some(cx.waker().clone());
                Poll::Pending
            }
        }
    }
}

/// A minimal single-future executor: polls `future` on the current thread,
/// parking between polls until the pending operation wakes it.
///
/// This is the offline stand-in for a real runtime's `block_on` — the
/// serving front only needs *some* way to drive a [`std::future::Future`] in
/// environments (like this workspace's CI) with no async runtime dependency.
pub fn block_on<F: Future>(future: F) -> F::Output {
    struct ThreadWaker(std::thread::Thread);
    impl Wake for ThreadWaker {
        fn wake(self: Arc<Self>) {
            self.0.unpark();
        }
    }
    let waker = Waker::from(Arc::new(ThreadWaker(std::thread::current())));
    let mut cx = Context::from_waker(&waker);
    let mut future = std::pin::pin!(future);
    loop {
        match future.as_mut().poll(&mut cx) {
            Poll::Ready(value) => return value,
            Poll::Pending => std::thread::park(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wait_returns_a_prefilled_outcome() {
        let slot = Slot::new();
        slot.fulfil(Ok(DecodeResult::empty()));
        assert!(slot.is_fulfilled());
        let future = DecodeFuture::new(Arc::clone(&slot));
        assert!(future.is_ready());
        assert!(future.wait().unwrap().is_empty());
    }

    #[test]
    fn first_fulfilment_wins() {
        let slot = Slot::new();
        slot.fulfil(Err(ServeError::Closed));
        slot.fulfil(Ok(DecodeResult::empty()));
        let outcome = DecodeFuture::new(slot).wait();
        assert_eq!(outcome.unwrap_err(), ServeError::Closed);
    }

    #[test]
    fn block_on_drives_a_future_fulfilled_from_another_thread() {
        let slot = Slot::new();
        let future = DecodeFuture::new(Arc::clone(&slot));
        assert!(!future.is_ready());
        let producer = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(10));
            slot.fulfil(Ok(DecodeResult::empty()));
        });
        assert!(block_on(future).unwrap().is_empty());
        producer.join().unwrap();
    }

    #[test]
    fn block_on_handles_immediately_ready_futures() {
        assert_eq!(block_on(std::future::ready(17)), 17);
    }
}
