//! Batch-decoding scaling bench: `Recognizer::decode_batch` at 1, 8 and 32
//! utterances on the SIMD software backend and the hardware model, so the
//! cache-amortisation claim is measured per batch size rather than asserted.

use asr_bench::experiments::{batch_bench_task, recognizer};
use asr_core::DecoderConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_decode_batch(c: &mut Criterion) {
    let task = batch_bench_task(11);
    let utterances: Vec<Vec<Vec<f32>>> = (0..32)
        .map(|i| task.synthesize_utterance(1, 0.3, 64 + i as u64).0)
        .collect();

    let mut group = c.benchmark_group("decode_batch");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    let backends = [
        ("simd", DecoderConfig::simd()),
        ("soc", DecoderConfig::hardware(2)),
    ];
    for (name, config) in backends {
        let rec = recognizer(&task, config).expect("recogniser");
        for size in [1usize, 8, 32] {
            let batch = &utterances[..size];
            group.bench_with_input(BenchmarkId::new(name, size), &size, |b, _| {
                b.iter(|| rec.decode_batch(batch).expect("batch decode").len())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_decode_batch);
criterion_main!(benches);
