//! E5 / E6 bench: end-to-end decoding of synthetic utterances on the hardware
//! model with one and two accelerator structures, on the software reference
//! backend and on the SIMD-style software backend — plus the batch-decoding
//! amortisation measurement (`decode_batch` of 32 utterances against 32
//! independent `decode_features` calls over one warmed scorer vs 32 cold
//! ones).

use asr_bench::experiments::{batch_bench_task, build_eval_task, recognizer};
use asr_core::DecoderConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_decode(c: &mut Criterion) {
    let task = build_eval_task(500, 3);
    let (features, _) = task.synthesize_utterance(3, 0.3, 1);
    let mut group = c.benchmark_group("e5_decode_utterance");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    let configs = [
        ("hardware_1_structure", DecoderConfig::hardware(1)),
        ("hardware_2_structures", DecoderConfig::hardware(2)),
        ("software_reference", DecoderConfig::software()),
        ("software_simd", DecoderConfig::simd()),
    ];
    for (name, config) in configs {
        let rec = recognizer(&task, config).expect("recogniser");
        group.bench_with_input(BenchmarkId::from_parameter(name), &rec, |b, rec| {
            b.iter(|| {
                rec.decode_features(&features)
                    .expect("decode")
                    .hypothesis
                    .words
                    .len()
            })
        });
    }
    group.finish();
}

/// The acceptance measurement for the batch API: one scorer (and its model
/// cache) across 32 short utterances must beat 32 per-utterance scorers.
fn bench_batch_amortisation(c: &mut Criterion) {
    let task = batch_bench_task(7);
    let rec = recognizer(&task, DecoderConfig::simd()).expect("recogniser");
    let utterances: Vec<Vec<Vec<f32>>> = (0..32)
        .map(|i| task.synthesize_utterance(1, 0.3, i as u64).0)
        .collect();

    let mut group = c.benchmark_group("decode_batch_amortisation");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    group.bench_function("batch_32", |b| {
        b.iter(|| rec.decode_batch(&utterances).expect("batch decode").len())
    });
    group.bench_function("sequential_32", |b| {
        b.iter(|| {
            utterances
                .iter()
                .map(|u| {
                    rec.decode_features(u)
                        .expect("decode")
                        .hypothesis
                        .words
                        .len()
                })
                .sum::<usize>()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_decode, bench_batch_amortisation);
criterion_main!(benches);
