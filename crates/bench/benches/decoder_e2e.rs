//! E5 / E6 bench: end-to-end decoding of synthetic utterances on the hardware
//! model with one and two accelerator structures, and on the software
//! reference backend.

use asr_bench::experiments::{build_eval_task, recognizer};
use asr_core::DecoderConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_decode(c: &mut Criterion) {
    let task = build_eval_task(500, 3);
    let (features, _) = task.synthesize_utterance(3, 0.3, 1);
    let mut group = c.benchmark_group("e5_decode_utterance");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    let configs = [
        ("hardware_1_structure", DecoderConfig::hardware(1)),
        ("hardware_2_structures", DecoderConfig::hardware(2)),
        ("software_reference", DecoderConfig::software()),
    ];
    for (name, config) in configs {
        let rec = recognizer(&task, config).expect("recogniser");
        group.bench_with_input(BenchmarkId::from_parameter(name), &rec, |b, rec| {
            b.iter(|| {
                rec.decode_features(&features)
                    .expect("decode")
                    .hypothesis
                    .words
                    .len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_decode);
criterion_main!(benches);
