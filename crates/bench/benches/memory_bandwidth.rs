//! E1 bench: packing the acoustic model into its flash image at each mantissa
//! width, measuring packer throughput and reporting the resulting sizes.

use asr_acoustic::{AcousticModel, AcousticModelConfig, FlashImage, StorageLayout};
use asr_float::MantissaWidth;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_flash_packing(c: &mut Criterion) {
    let model = AcousticModel::untrained(AcousticModelConfig {
        num_senones: 200,
        ..AcousticModelConfig::tiny()
    })
    .expect("model");
    let mut group = c.benchmark_group("e1_flash_packing");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800));
    for width in MantissaWidth::PAPER_SWEEP {
        // Report the full-scale analytic sizes alongside the packed bench.
        let layout = StorageLayout::for_config(&AcousticModelConfig::paper_default(), width);
        println!(
            "# {}: paper-scale model {:.2} MB, worst-case bandwidth {:.3} GB/s",
            width,
            layout.model_megabytes(),
            layout.worst_case_bandwidth_gb_per_s()
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{width}")),
            &width,
            |b, &w| b.iter(|| FlashImage::pack(&model, w).payload_bytes()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_flash_packing);
criterion_main!(benches);
