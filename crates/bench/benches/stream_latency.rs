//! Streaming latency bench: the same 32-utterance workload decoded (a)
//! offline through `decode_batch` (one warmed decoder, whole utterances) and
//! (b) through streaming feature sessions fed 5-frame chunks, with the
//! decoder recycled across sessions so both paths amortise the backend's
//! model caches identically — the measured difference is the price of
//! incremental operation itself.
//!
//! The `bench_gate` acceptance check reads both: streaming must stay within
//! 15 % of the offline path's throughput (the stream-vs-offline RTF overhead
//! bound), or chunked operation has stopped being free.  The bench also
//! records `stream_latency/p50_chunk_seconds` — the median per-chunk
//! processing latency of a streamed run — which the gate tracks under the
//! ordinary regression rule.

use asr_bench::experiments::{batch_bench_task, recognizer};
use asr_core::DecoderConfig;
use asr_stream::StreamingRecognizer;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

/// Frames per streamed chunk: 5 frames = 50 ms of audio per push, a typical
/// interactive packet size.
const CHUNK_FRAMES: usize = 5;

fn bench_stream_latency(c: &mut Criterion) {
    let task = batch_bench_task(17);
    let utterances: Vec<Vec<Vec<f32>>> = (0..32)
        .map(|i| task.synthesize_utterance(1, 0.3, 300 + i as u64).0)
        .collect();

    let mut group = c.benchmark_group("stream_latency");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    let offline = recognizer(&task, DecoderConfig::simd()).expect("recogniser");
    group.bench_function("offline_32", |b| {
        b.iter(|| offline.decode_batch(&utterances).expect("decode").len())
    });

    let streamer = StreamingRecognizer::feature_only(
        recognizer(&task, DecoderConfig::simd()).expect("recogniser"),
    )
    .expect("streamer");
    group.bench_function("stream_32", |b| {
        b.iter(|| {
            let mut decoder = streamer
                .recognizer()
                .phone_decoder()
                .expect("decoder builds");
            let mut words = 0usize;
            for features in &utterances {
                let mut session = streamer.feature_session_with(decoder);
                for chunk in features.chunks(CHUNK_FRAMES) {
                    session.push_chunk(chunk).expect("chunk decodes");
                }
                let (outcome, recycled) = session.finish_parts();
                words += outcome.expect("finish").result.hypothesis.words.len();
                decoder = recycled;
            }
            words
        })
    });
    group.finish();

    record_p50_chunk_latency(&streamer, &utterances);
}

/// Measures one representative streamed pass and records the median per-chunk
/// latency into the `LVCSR_BENCH_JSON` document as
/// `stream_latency/p50_chunk_seconds`.
fn record_p50_chunk_latency(streamer: &StreamingRecognizer, utterances: &[Vec<Vec<f32>>]) {
    let path = match std::env::var("LVCSR_BENCH_JSON") {
        Ok(p) if !p.is_empty() => p,
        _ => return,
    };
    let mut timing = asr_hw::StreamTiming::new();
    for features in utterances {
        let mut session = streamer.feature_session().expect("session");
        for chunk in features.chunks(CHUNK_FRAMES) {
            session.push_chunk(chunk).expect("chunk decodes");
        }
        let outcome = session.finish().expect("finish");
        timing = timing.merge(&outcome.timing);
    }
    if let Err(e) = asr_bench::bench_json::record_entry(
        &path,
        "stream_latency/p50_chunk_seconds",
        timing.p50_latency_s(),
    ) {
        eprintln!("warning: could not record p50 chunk latency in {path}: {e}");
    }
}

criterion_group!(benches, bench_stream_latency);
criterion_main!(benches);
