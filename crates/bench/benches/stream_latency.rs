//! Streaming latency bench: the same 32-utterance workload decoded (a)
//! offline through `decode_batch` (one warmed decoder, whole utterances) and
//! (b) through streaming feature sessions fed 5-frame chunks, with the
//! decoder recycled across sessions so both paths amortise the backend's
//! model caches identically — the measured difference is the price of
//! incremental operation itself.
//!
//! The `bench_gate` acceptance check reads both: streaming must stay within
//! 15 % of the offline path's throughput (the stream-vs-offline RTF overhead
//! bound), or chunked operation has stopped being free.  The bench also
//! records `stream_latency/p50_chunk_seconds` — the median per-chunk
//! processing latency of a streamed run — which the gate tracks under the
//! ordinary regression rule.

use asr_bench::experiments::{batch_bench_task, recognizer};
use asr_core::{DecoderConfig, Recognizer};
use asr_corpus::{ScenarioGenerator, ScenarioKind, ScenarioVoiceTask};
use asr_stream::{AdaptiveVadConfig, StreamConfig, StreamingRecognizer, VadConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

/// Frames per streamed chunk: 5 frames = 50 ms of audio per push, a typical
/// interactive packet size.
const CHUNK_FRAMES: usize = 5;

fn bench_stream_latency(c: &mut Criterion) {
    let task = batch_bench_task(17);
    let utterances: Vec<Vec<Vec<f32>>> = (0..32)
        .map(|i| task.synthesize_utterance(1, 0.3, 300 + i as u64).0)
        .collect();

    let mut group = c.benchmark_group("stream_latency");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    let offline = recognizer(&task, DecoderConfig::simd()).expect("recogniser");
    group.bench_function("offline_32", |b| {
        b.iter(|| offline.decode_batch(&utterances).expect("decode").len())
    });

    let streamer = StreamingRecognizer::feature_only(
        recognizer(&task, DecoderConfig::simd()).expect("recogniser"),
    )
    .expect("streamer");
    group.bench_function("stream_32", |b| {
        b.iter(|| {
            let mut decoder = streamer
                .recognizer()
                .phone_decoder()
                .expect("decoder builds");
            let mut words = 0usize;
            for features in &utterances {
                let mut session = streamer.feature_session_with(decoder);
                for chunk in features.chunks(CHUNK_FRAMES) {
                    session.push_chunk(chunk).expect("chunk decodes");
                }
                let (outcome, recycled) = session.finish_parts();
                words += outcome.expect("finish").result.hypothesis.words.len();
                decoder = recycled;
            }
            words
        })
    });
    group.finish();

    record_p50_chunk_latency(&streamer, &utterances);
}

/// Adversarial audio streaming: the full VAD → frontend → decoder path over a
/// scenario whose noise floor ramps an order of magnitude, endpointed by the
/// adaptive tracker.  Measures the cost of continuous-listening operation —
/// every hop pays RMS tracking and the percentile floor even when no
/// utterance is open — on the same 15 % gate as the plain streaming path.
fn bench_stream_adversarial(c: &mut Criterion) {
    let task = ScenarioVoiceTask::train(11).expect("scenario task trains");
    let scenario = ScenarioGenerator::new(&task.dictionary, 17).generate(ScenarioKind::NoiseRampUp);
    let streamer = StreamingRecognizer::new(
        Recognizer::new(
            task.acoustic_model.clone(),
            task.dictionary.clone(),
            task.language_model.clone(),
            DecoderConfig::simd(),
        )
        .expect("recogniser"),
        StreamConfig {
            frontend: ScenarioVoiceTask::frontend_config(),
            vad: VadConfig {
                adaptive: Some(AdaptiveVadConfig::default()),
                ..VadConfig::default()
            },
            ..StreamConfig::default()
        },
    )
    .expect("streamer");

    let mut group = c.benchmark_group("stream_adversarial");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    // 480-sample chunks: 30 ms packets, three VAD hops per push.
    group.bench_function("noise_ramp_session", |b| {
        b.iter(|| {
            let mut session = streamer.audio_session().expect("session");
            let mut utterances = 0usize;
            for chunk in scenario.samples.chunks(480) {
                for event in session.push_audio(chunk).expect("push") {
                    if matches!(
                        event,
                        asr_stream::StreamEvent::UtteranceEnd(_)
                            | asr_stream::StreamEvent::UtteranceForceEnded(_)
                    ) {
                        utterances += 1;
                    }
                }
            }
            session.close().expect("close");
            utterances
        })
    });
    group.finish();
}

/// Measures one representative streamed pass and records the median per-chunk
/// latency into the `LVCSR_BENCH_JSON` document as
/// `stream_latency/p50_chunk_seconds`.
fn record_p50_chunk_latency(streamer: &StreamingRecognizer, utterances: &[Vec<Vec<f32>>]) {
    let path = match std::env::var("LVCSR_BENCH_JSON") {
        Ok(p) if !p.is_empty() => p,
        _ => return,
    };
    let mut timing = asr_hw::StreamTiming::new();
    for features in utterances {
        let mut session = streamer.feature_session().expect("session");
        for chunk in features.chunks(CHUNK_FRAMES) {
            session.push_chunk(chunk).expect("chunk decodes");
        }
        let outcome = session.finish().expect("finish");
        timing = timing.merge(&outcome.timing);
    }
    if let Err(e) = asr_bench::bench_json::record_entry(
        &path,
        "stream_latency/p50_chunk_seconds",
        timing.p50_latency_s(),
    ) {
        eprintln!("warning: could not record p50 chunk latency in {path}: {e}");
    }
}

criterion_group!(benches, bench_stream_latency, bench_stream_adversarial);
criterion_main!(benches);
