//! Telemetry-overhead bench: the same 32-utterance decode loop measured
//! three ways — bare (the pre-telemetry hot path), with the serving front's
//! full instrumentation sequence against a *disabled* `Telemetry` handle,
//! and with an enabled handle recording every span fact into a memory sink.
//!
//! The `bench_gate` acceptance check judges both pairs as same-run ratios
//! (machine-independent): disabled telemetry must stay within 2 % of the
//! bare loop — telemetry that is off must be indistinguishable from
//! telemetry that does not exist — and enabled within 15 %, so turning
//! tracing on for a production incident never costs real throughput.
//!
//! A 2 % bound cannot be read off the three criterion means: sequential
//! measurement windows on a busy host drift by far more than 2 % between
//! benches.  The gated numbers are therefore *paired*: the bench interleaves
//! the three variants round-robin, takes per-round overhead ratios (drift
//! hits both sides of a round almost equally and cancels), and records the
//! median ratio under `obs_overhead/disabled_over_baseline` and
//! `obs_overhead/enabled_over_baseline` — the entries `bench_gate` enforces.
//! The three criterion means stay informational.

use asr_bench::experiments::{batch_bench_task, recognizer};
use asr_core::{DecoderConfig, Recognizer};
use asr_obs::{
    Counter, Histogram, MetricsRegistry, Outcome, RequestKind, SpanEvent, Telemetry, TraceId,
};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::{Duration, Instant};

/// The per-request instrumentation the serving front performs: registry
/// handles plus a telemetry pipeline.  One instance per bench variant, so
/// the handles' registration cost stays outside the measured loop — exactly
/// like a server registering its model counters once at spawn.
struct Instrumentation {
    telemetry: Telemetry,
    submitted: Counter,
    completed: Counter,
    service: Histogram,
}

impl Instrumentation {
    fn new(telemetry: Telemetry) -> Self {
        let metrics = MetricsRegistry::new();
        Instrumentation {
            submitted: metrics.counter("serve.bench.submitted"),
            completed: metrics.counter("serve.bench.completed"),
            service: metrics.histogram("serve.bench.service_us"),
            telemetry,
        }
    }
}

/// One utterance through the decode hot path.  With `instr` `None` this is
/// the bare pre-telemetry decode; with `Some` it performs the same
/// instrumentation sequence the serving front's worker does around it:
/// counter increments, a service-latency histogram record, and the
/// admitted → enqueued → decode-started → finished span emissions.
///
/// `inline(never)` pins all three variants to the *same* machine code: the
/// measured difference is then the instrumentation work itself, not the
/// code-alignment lottery of three separately monomorphised bench closures.
#[inline(never)]
fn decode_one(rec: &Recognizer, features: &[Vec<f32>], instr: Option<&Instrumentation>) -> usize {
    let started = instr.map(|i| {
        i.submitted.inc();
        Instant::now()
    });
    let trace = match instr {
        Some(i) if i.telemetry.is_enabled() => {
            let trace = i.telemetry.begin_trace();
            i.telemetry.emit(
                trace,
                &SpanEvent::Admitted {
                    kind: RequestKind::Decode,
                    model: None,
                    tenant: None,
                },
            );
            trace
        }
        _ => TraceId::NONE,
    };
    if let Some(i) = instr {
        i.telemetry.emit(trace, &SpanEvent::Enqueued { depth: 1 });
        i.telemetry
            .emit(trace, &SpanEvent::DecodeStarted { worker: 0 });
    }
    let result = rec.decode_features(features).expect("decode");
    if let Some(i) = instr {
        i.service
            .record(started.expect("timed with instrumentation").elapsed());
        i.completed.inc();
        i.telemetry.emit(
            trace,
            &SpanEvent::Finished {
                outcome: Outcome::Completed,
                frames: features.len(),
            },
        );
    }
    result.hypothesis.words.len()
}

fn decode_pass(
    rec: &Recognizer,
    utterances: &[Vec<Vec<f32>>],
    instr: Option<&Instrumentation>,
) -> usize {
    utterances
        .iter()
        .map(|features| decode_one(rec, features, instr))
        .sum()
}

fn bench_obs_overhead(c: &mut Criterion) {
    let task = batch_bench_task(23);
    let utterances: Vec<Vec<Vec<f32>>> = (0..32)
        .map(|i| task.synthesize_utterance(1, 0.3, 700 + i as u64).0)
        .collect();
    let rec = recognizer(&task, DecoderConfig::simd()).expect("recogniser");

    let mut group = c.benchmark_group("obs_overhead");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    group.bench_function("baseline_32", |b| {
        b.iter(|| decode_pass(&rec, &utterances, None))
    });

    let disabled = Instrumentation::new(Telemetry::disabled());
    group.bench_function("disabled_32", |b| {
        b.iter(|| decode_pass(&rec, &utterances, Some(&disabled)))
    });

    group.bench_function("enabled_32", |b| {
        b.iter(|| {
            // A fresh memory sink per pass keeps the recorded-fact buffer
            // from growing across iterations — each pass pays the full
            // recording cost on an empty sink, like a fresh run directory.
            let (telemetry, _sink) = Telemetry::to_memory();
            let enabled = Instrumentation::new(telemetry);
            decode_pass(&rec, &utterances, Some(&enabled))
        })
    });
    group.finish();

    record_overhead_ratios(&rec, &utterances);
}

/// Measures the two gated overhead ratios by paired interleaving and merges
/// them into the `LVCSR_BENCH_JSON` document (no-op when unset, like the
/// stream bench's p50 record).  The pairing is per *utterance*: the three
/// variants decode the same utterance back to back (order rotated every
/// triple), so the three timings sit inside a window of under a
/// millisecond and even short host-load episodes hit them near-equally;
/// each triple yields one disabled/base and one enabled/base ratio, and
/// the reported figure is the median over every (round × utterance)
/// triple.  Sequential window means on a shared host drift by more than
/// the 2 % bound being enforced, so none of the three raw criterion means
/// is usable for the gate — only tightly paired ratios are.
fn record_overhead_ratios(rec: &Recognizer, utterances: &[Vec<Vec<f32>>]) {
    let path = match std::env::var("LVCSR_BENCH_JSON") {
        Ok(p) if !p.is_empty() => p,
        _ => return,
    };
    const WARMUP_ROUNDS: usize = 1;
    const ROUNDS: usize = 30;
    let disabled = Instrumentation::new(Telemetry::disabled());
    let (telemetry, _sink) = Telemetry::to_memory();
    let enabled = Instrumentation::new(telemetry);
    let timed = |features: &[Vec<f32>], instr: Option<&Instrumentation>| {
        let start = Instant::now();
        std::hint::black_box(decode_one(rec, features, instr));
        start.elapsed().as_secs_f64()
    };
    let mut disabled_ratios = Vec::with_capacity(ROUNDS * utterances.len());
    let mut enabled_ratios = Vec::with_capacity(ROUNDS * utterances.len());
    for round in 0..WARMUP_ROUNDS + ROUNDS {
        for (index, features) in utterances.iter().enumerate() {
            // The same utterance three ways, back to back, order rotated
            // per triple so cache-warming and position bias spread evenly
            // across the variants.
            let mut times = [0.0f64; 3];
            for position in 0..3 {
                let variant = (position + round + index) % 3;
                times[variant] = timed(
                    features,
                    match variant {
                        0 => None,
                        1 => Some(&disabled),
                        _ => Some(&enabled),
                    },
                );
            }
            let [base, dis, ena] = times;
            if round >= WARMUP_ROUNDS && base > 0.0 {
                disabled_ratios.push(dis / base);
                enabled_ratios.push(ena / base);
            }
        }
    }
    let median = |ratios: &mut Vec<f64>| {
        ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite ratios"));
        ratios[ratios.len() / 2]
    };
    for (key, ratios) in [
        ("obs_overhead/disabled_over_baseline", &mut disabled_ratios),
        ("obs_overhead/enabled_over_baseline", &mut enabled_ratios),
    ] {
        let samples = ratios.len();
        let value = median(ratios);
        println!("{key}: {value:.4} (median of {samples} per-utterance paired triples)");
        if let Err(e) = asr_bench::bench_json::record_entry(&path, key, value) {
            eprintln!("warning: could not record {key} in {path}: {e}");
        }
    }
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
