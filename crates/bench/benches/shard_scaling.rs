//! Shard dispatch-overhead bench: the same 200-frame scoring workload
//! driven through a 4-shard `ShardedScorer` under the three dispatch
//! regimes —
//!
//! * `pool_200f`   — persistent worker pool (threads spawned once per
//!   utterance, per-frame jobs over channels; the production default),
//! * `scoped_200f` — a fresh scoped thread per shard per frame (the
//!   historical dispatch, ~10 µs spawn each),
//! * `inline_200f` — sequential fan-out on the calling thread (the
//!   dispatch-free floor).
//!
//! The shards run the *software* backend on purpose: its per-senone cost is
//! tiny, so these numbers are dominated by dispatch overhead rather than
//! arithmetic — exactly the recurring cost the persistent pool exists to
//! cut.  `bench_gate` requires `pool_200f` to beat `scoped_200f` on
//! multi-core hosts (bounded overhead on single-core hosts, where both
//! dispatches serialise), and the measured per-frame pool dispatch overhead
//! over the inline floor is recorded into the `LVCSR_BENCH_JSON` document
//! as `shard_scaling/pool_dispatch_overhead_per_frame_seconds`.

use asr_acoustic::{AcousticModel, AcousticModelConfig, SenoneId};
use asr_core::{
    GmmSelectionConfig, ScoringBackendKind, SenoneScorer, ShardDispatch, ShardedScorer,
};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::{Duration, Instant};

const FRAMES: usize = 200;
const SHARDS: usize = 4;

fn bench_model() -> AcousticModel {
    AcousticModel::untrained(AcousticModelConfig::tiny()).expect("bench model")
}

fn build_sharded(dispatch: ShardDispatch, parallel: bool) -> ShardedScorer {
    let selection = GmmSelectionConfig::default();
    let shards: Vec<Box<dyn SenoneScorer>> = (0..SHARDS)
        .map(|_| {
            ScoringBackendKind::Software
                .build_scorer(&selection)
                .expect("software shard")
        })
        .collect();
    ShardedScorer::new(shards)
        .expect("sharded scorer")
        .with_parallelism(parallel)
        .with_dispatch(dispatch)
}

/// One utterance: `FRAMES` frames, every senone active each frame, pool
/// joined at the end — the exact per-frame call sequence the decode loop
/// makes, minus the search.
fn run_utterance(scorer: &mut ShardedScorer, model: &AcousticModel, ids: &[SenoneId], x: &[f32]) {
    for _ in 0..FRAMES {
        scorer.begin_frame(x);
        scorer.score_senones(model, ids, x).expect("score");
        scorer.end_frame(0, 0);
    }
    assert!(
        scorer.finish_utterance().is_none(),
        "software shards keep no report"
    );
}

fn bench_shard_scaling(c: &mut Criterion) {
    let model = bench_model();
    let ids: Vec<SenoneId> = (0..model.senones().len() as u32).map(SenoneId).collect();
    let x: Vec<f32> = (0..model.feature_dim()).map(|d| 0.1 * d as f32).collect();

    let mut group = c.benchmark_group("shard_scaling");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    let mut pooled = build_sharded(ShardDispatch::Pooled, true);
    group.bench_function("pool_200f", |b| {
        b.iter(|| run_utterance(&mut pooled, &model, &ids, &x))
    });

    let mut scoped = build_sharded(ShardDispatch::ScopedSpawn, true);
    group.bench_function("scoped_200f", |b| {
        b.iter(|| run_utterance(&mut scoped, &model, &ids, &x))
    });

    let mut inline = build_sharded(ShardDispatch::Pooled, false);
    group.bench_function("inline_200f", |b| {
        b.iter(|| run_utterance(&mut inline, &model, &ids, &x))
    });

    group.finish();
    record_dispatch_metadata(&model, &ids, &x);
}

/// Records two pseudo-entries next to the criterion results:
///
/// * the shared `host/cpus` metadata record (see
///   `asr_bench::bench_json::record_host_metadata`), so the gate applies the
///   strict pool-beats-scoped rule only when the numbers were measured with
///   real parallelism available;
/// * `shard_scaling/pool_dispatch_overhead_per_frame_seconds` — pooled
///   minus inline wall-clock per frame on a directly timed run (clamped at
///   zero: on multi-core hosts the pool can beat the inline floor outright).
fn record_dispatch_metadata(model: &AcousticModel, ids: &[SenoneId], x: &[f32]) {
    asr_bench::bench_json::record_host_metadata();
    let path = match std::env::var("LVCSR_BENCH_JSON") {
        Ok(p) if !p.is_empty() => p,
        _ => return,
    };
    let time_utterances = |dispatch: ShardDispatch, parallel: bool| -> f64 {
        let mut scorer = build_sharded(dispatch, parallel);
        run_utterance(&mut scorer, model, ids, x); // warm-up
        let rounds = 3;
        let start = Instant::now();
        for _ in 0..rounds {
            run_utterance(&mut scorer, model, ids, x);
        }
        start.elapsed().as_secs_f64() / (rounds * FRAMES) as f64
    };
    let pooled = time_utterances(ShardDispatch::Pooled, true);
    let inline = time_utterances(ShardDispatch::Pooled, false);
    let overhead = (pooled - inline).max(0.0);
    if let Err(e) = asr_bench::bench_json::record_entry(
        &path,
        "shard_scaling/pool_dispatch_overhead_per_frame_seconds",
        overhead,
    ) {
        eprintln!("warning: could not record pool dispatch overhead in {path}: {e}");
    }
}

criterion_group!(benches, bench_shard_scaling);
criterion_main!(benches);
