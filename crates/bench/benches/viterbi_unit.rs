//! F3 bench: Viterbi-unit HMM updates for the 3/5/7-state topologies.

use asr_acoustic::{HmmTopology, TransitionMatrix};
use asr_float::LogProb;
use asr_hw::{ViterbiUnit, ViterbiUnitConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_viterbi(c: &mut Criterion) {
    let mut group = c.benchmark_group("f3_viterbi_step");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800));
    for topo in HmmTopology::ALL {
        let n = topo.num_states();
        let transitions = TransitionMatrix::bakis(topo, 0.6).expect("bakis");
        let prev = vec![LogProb::new(-5.0); n];
        let obs = vec![LogProb::new(-2.0); n];
        println!(
            "# {}: {} hardware cycles per HMM update",
            topo,
            ViterbiUnitConfig::default().cycles_per_hmm(n, 2)
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{topo}")),
            &n,
            |b, _| {
                b.iter(|| {
                    let mut unit = ViterbiUnit::default();
                    for _ in 0..100 {
                        unit.step_hmm(&prev, LogProb::zero(), &transitions, &obs)
                            .expect("step");
                    }
                    unit.stats().cycles
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_viterbi);
criterion_main!(benches);
