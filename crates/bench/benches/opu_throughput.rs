//! F2 / E5 bench: senone-scoring throughput of the Observation Probability
//! unit model, at the three datapath widths of the paper.

use asr_acoustic::{AcousticModel, AcousticModelConfig, SenoneId};
use asr_float::MantissaWidth;
use asr_hw::{ObservationProbabilityUnit, OpuConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_opu(c: &mut Criterion) {
    let model = AcousticModel::untrained(AcousticModelConfig {
        num_senones: 64,
        num_components: 8,
        feature_dim: 39,
        ..AcousticModelConfig::tiny()
    })
    .expect("model");
    let ids: Vec<SenoneId> = (0..64).map(SenoneId).collect();
    let x: Vec<f32> = (0..39).map(|d| 0.1 * d as f32).collect();

    let mut group = c.benchmark_group("f2_opu_scoring");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800));
    for width in MantissaWidth::PAPER_SWEEP {
        let cfg = OpuConfig::with_width(width);
        println!(
            "# {}: {} hardware cycles per senone (39 dims x 8 Gaussians)",
            width,
            cfg.cycles_per_senone(39, 8)
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{width}")),
            &cfg,
            |b, cfg| {
                b.iter(|| {
                    let mut opu = ObservationProbabilityUnit::new(cfg.clone());
                    opu.load_feature_vector(&x);
                    opu.score_active_set(&model, &ids).expect("score").len()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_opu);
criterion_main!(benches);
