//! Serving/sharding throughput bench: a 32-utterance workload decoded on
//! (a) one SoC scorer, (b) a 4-shard `ShardedScorer` (4 SoC instances, the
//! active-senone set split across scoped threads), and (c) the same sharded
//! scorer fed through the `asr-serve` queue + micro-batcher.
//!
//! The `bench_gate` acceptance check reads (a) and (b): the sharded scorer
//! must beat the single-SoC path on this workload, or the scale-out claim is
//! regressing.

use asr_bench::experiments::{recognizer, serve_bench_task};
use asr_core::DecoderConfig;
use asr_serve::{AsrServer, ServeConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench_serve_throughput(c: &mut Criterion) {
    let task = serve_bench_task(13);
    let utterances: Vec<Vec<Vec<f32>>> = (0..32)
        .map(|i| task.synthesize_utterance(1, 0.3, 200 + i as u64).0)
        .collect();

    let mut group = c.benchmark_group("serve_throughput");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    let single = recognizer(&task, DecoderConfig::hardware(2)).expect("recogniser");
    group.bench_function("single_soc_32", |b| {
        b.iter(|| single.decode_batch(&utterances).expect("decode").len())
    });

    let sharded = recognizer(&task, DecoderConfig::sharded_hardware(4)).expect("recogniser");
    group.bench_function("sharded4_soc_32", |b| {
        b.iter(|| sharded.decode_batch(&utterances).expect("decode").len())
    });

    // The full serving path: 32 submissions through the bounded queue, the
    // micro-batcher coalescing them onto the worker's warmed sharded scorer.
    let server = AsrServer::spawn(
        recognizer(&task, DecoderConfig::sharded_hardware(4)).expect("recogniser"),
        ServeConfig {
            max_pending: 64,
            max_batch: 8,
            max_batch_delay: Duration::from_millis(1),
        },
    )
    .expect("server");
    group.bench_function("queue_sharded4_soc_32", |b| {
        b.iter(|| {
            let pending: Vec<_> = utterances
                .iter()
                .map(|u| server.submit(u.clone()).expect("submit"))
                .collect();
            pending
                .into_iter()
                .map(|f| f.wait().expect("decode").hypothesis.words.len())
                .sum::<usize>()
        })
    });
    group.finish();
    record_host_cpus();
}

/// Records the *measurement* host's CPU count into the `LVCSR_BENCH_JSON`
/// document as the pseudo-entry `serve_throughput/host_cpus`.  The bench
/// gate's shard check reads it so the strict "sharded must beat single"
/// rule is applied only when the numbers were actually measured with real
/// parallelism available — gating a 1-CPU measurement on a multi-core
/// reviewer's machine (or vice versa) would judge the wrong claim.
fn record_host_cpus() {
    let path = match std::env::var("LVCSR_BENCH_JSON") {
        Ok(p) if !p.is_empty() => p,
        _ => return,
    };
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if let Err(e) =
        asr_bench::bench_json::record_entry(&path, "serve_throughput/host_cpus", cpus as f64)
    {
        eprintln!("warning: could not record host_cpus in {path}: {e}");
    }
}

criterion_group!(benches, bench_serve_throughput);
criterion_main!(benches);
