//! Serving/sharding throughput bench: a 32-utterance workload decoded on
//! (a) one SoC scorer, (b) a 4-shard `ShardedScorer` (4 SoC instances, the
//! active-senone set split across worker threads), (c) the same sharded
//! scorer fed through the `asr-serve` queue + micro-batcher, and (d) the
//! serving front at 1, 2 and 4 decoder workers over plain SoC scorers —
//! the inter-utterance parallelism axis on its own.
//!
//! The `bench_gate` acceptance checks read (a)/(b) — the sharded scorer
//! must beat the single-SoC path — and the `workers{1,4}` pair from (d):
//! four workers must beat one on multi-core measurement hosts, or the
//! multi-worker claim is regressing.  An open-loop arrival smoke
//! (`open_loop_workers2_32`) replays a fixed pseudo-random arrival schedule
//! through a two-worker server, covering the worker wake-up path that
//! closed-loop floods never exercise, and `two_model_mixed_32` floods a
//! two-model registry with interleaved per-model traffic to guard the
//! routing / per-model micro-batching overhead.

use asr_bench::experiments::{recognizer, serve_bench_task};
use asr_core::DecoderConfig;
use asr_serve::{AsrServer, DecodeRequest, ModelRegistry, ServeConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

fn bench_serve_throughput(c: &mut Criterion) {
    let task = serve_bench_task(13);
    let utterances: Vec<Vec<Vec<f32>>> = (0..32)
        .map(|i| task.synthesize_utterance(1, 0.3, 200 + i as u64).0)
        .collect();

    let mut group = c.benchmark_group("serve_throughput");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    let single = recognizer(&task, DecoderConfig::hardware(2)).expect("recogniser");
    group.bench_function("single_soc_32", |b| {
        b.iter(|| single.decode_batch(&utterances).expect("decode").len())
    });

    let sharded = recognizer(&task, DecoderConfig::sharded_hardware(4)).expect("recogniser");
    group.bench_function("sharded4_soc_32", |b| {
        b.iter(|| sharded.decode_batch(&utterances).expect("decode").len())
    });

    // The full serving path: 32 submissions through the bounded queue, the
    // micro-batcher coalescing them onto the worker's warmed sharded scorer.
    let serve_config = ServeConfig::default()
        .max_pending(64)
        .max_batch(8)
        .max_batch_delay(Duration::from_millis(1));
    let server = AsrServer::spawn(
        recognizer(&task, DecoderConfig::sharded_hardware(4)).expect("recogniser"),
        serve_config.clone(),
    )
    .expect("server");
    let flood = |server: &AsrServer| {
        let pending: Vec<_> = utterances
            .iter()
            .map(|u| server.submit(u.clone()).expect("submit"))
            .collect();
        pending
            .into_iter()
            .map(|f| f.wait().expect("decode").hypothesis.words.len())
            .sum::<usize>()
    };
    group.bench_function("queue_sharded4_soc_32", |b| b.iter(|| flood(&server)));
    drop(server);

    // The worker-scaling curve: the same closed-loop 32-utterance flood
    // through 1, 2 and 4 decoder workers, each worker over its own plain SoC
    // scorer, so worker count is the only variable.  `bench_gate` compares
    // the 4-worker and 1-worker points.
    for workers in [1usize, 2, 4] {
        let server = AsrServer::spawn(
            recognizer(&task, DecoderConfig::hardware(2)).expect("recogniser"),
            serve_config.clone().workers(workers),
        )
        .expect("server");
        group.bench_function(format!("workers{workers}_soc_32"), |b| {
            b.iter(|| flood(&server))
        });
    }

    // Two models co-resident in one server, mixed traffic: 16 requests to
    // each, interleaved, through two workers.  Routing, per-model admission
    // and version-anchored micro-batching are all on the hot path here, so
    // the variant guards the multi-model layer's overhead.
    let other_task = serve_bench_task(14);
    let other_utterances: Vec<Vec<Vec<f32>>> = (0..16)
        .map(|i| other_task.synthesize_utterance(1, 0.3, 400 + i as u64).0)
        .collect();
    let registry = ModelRegistry::new()
        .register(
            "dictation",
            recognizer(&task, DecoderConfig::hardware(2)).expect("recogniser"),
        )
        .expect("register")
        .register(
            "command",
            recognizer(&other_task, DecoderConfig::hardware(2)).expect("recogniser"),
        )
        .expect("register")
        .default_model("dictation");
    let two_model_server =
        AsrServer::spawn_registry(registry, serve_config.clone().workers(2)).expect("server");
    group.bench_function("two_model_mixed_32", |b| {
        b.iter(|| {
            let pending: Vec<_> = utterances
                .iter()
                .take(16)
                .zip(&other_utterances)
                .flat_map(|(a, b)| {
                    [
                        two_model_server
                            .submit(DecodeRequest::new(a.clone()).model("dictation"))
                            .expect("submit"),
                        two_model_server
                            .submit(DecodeRequest::new(b.clone()).model("command"))
                            .expect("submit"),
                    ]
                })
                .collect();
            pending
                .into_iter()
                .map(|f| f.wait().expect("decode").hypothesis.words.len())
                .sum::<usize>()
        })
    });
    drop(two_model_server);

    // Open-loop arrival smoke: requests arrive on a fixed pseudo-random
    // schedule (deterministic seed, so baseline and PR replay the same
    // arrivals) instead of a closed-loop flood — idle workers must wake per
    // arrival rather than coast on an always-full queue.
    let mut rng = StdRng::seed_from_u64(0x5e21);
    let gaps: Vec<Duration> = (0..utterances.len())
        .map(|_| Duration::from_micros(rng.gen_range(0u64..150)))
        .collect();
    let open_loop_server = AsrServer::spawn(
        recognizer(&task, DecoderConfig::hardware(2)).expect("recogniser"),
        serve_config.workers(2),
    )
    .expect("server");
    group.bench_function("open_loop_workers2_32", |b| {
        b.iter(|| {
            let pending: Vec<_> = utterances
                .iter()
                .zip(&gaps)
                .map(|(u, gap)| {
                    std::thread::sleep(*gap);
                    open_loop_server.submit(u.clone()).expect("submit")
                })
                .collect();
            pending
                .into_iter()
                .map(|f| f.wait().expect("decode").hypothesis.words.len())
                .sum::<usize>()
        })
    });
    drop(open_loop_server);

    group.finish();
    // The gate's host-sensitive checks (shard scale-out, multi-worker
    // serving) need the *measurement* host's CPU count next to the results.
    asr_bench::bench_json::record_host_metadata();
}

criterion_group!(benches, bench_serve_throughput);
criterion_main!(benches);
