//! Frontend bench: MFCC extraction throughput (the paper's software stage,
//! "a lightweight process" — this bench verifies it stays far below real time
//! on the host).

use asr_frontend::{Frontend, FrontendConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench_frontend(c: &mut Criterion) {
    let frontend = Frontend::new(FrontendConfig::default()).expect("frontend");
    // One second of 16 kHz audio.
    let samples: Vec<f32> = (0..16_000)
        .map(|n| (2.0 * std::f32::consts::PI * 440.0 * n as f32 / 16_000.0).sin())
        .collect();
    let mut group = c.benchmark_group("f1_frontend");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    group.bench_function("mfcc_1s_audio", |b| {
        b.iter(|| frontend.process(&samples).len())
    });
    group.finish();
}

criterion_group!(benches, bench_frontend);
criterion_main!(benches);
