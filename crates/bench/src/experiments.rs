//! The per-experiment harness functions (see the experiment index in
//! DESIGN.md).  Every function is deterministic given its arguments.

use asr_acoustic::{quantize_model, AcousticModel, AcousticModelConfig, StorageLayout};
use asr_baseline::ComparisonTable;
use asr_core::{DecoderConfig, GmmSelectionConfig, Recognizer, ScoringBackendKind};
use asr_corpus::{align_wer, SyntheticTask, WerScore, Wsj5kTask};
use asr_float::{LogAddTable, MantissaWidth};
use asr_hw::{
    AreaBudget, ObservationProbabilityUnit, OpuConfig, PowerModel, SocConfig, ViterbiUnitConfig,
};
use asr_lexicon::DictionaryStorage;

/// One row of the paper's memory/bandwidth table (E1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct E1Row {
    /// Mantissa width.
    pub width: MantissaWidth,
    /// Paper: acoustic-model memory in MB.
    pub paper_memory_mb: f64,
    /// Measured (from the storage layout / flash packer).
    pub measured_memory_mb: f64,
    /// Paper: worst-case bandwidth in GB/s.
    pub paper_bandwidth_gbps: f64,
    /// Measured worst-case bandwidth in GB/s.
    pub measured_bandwidth_gbps: f64,
}

/// E1 — memory and bandwidth versus mantissa width (paper Section IV table).
pub fn e1_memory_bandwidth() -> Vec<E1Row> {
    let cfg = AcousticModelConfig::paper_default();
    let paper = [
        (MantissaWidth::FULL, 15.16, 1.516),
        (MantissaWidth::BITS_15, 11.37, 1.137),
        (MantissaWidth::BITS_12, 9.95, 0.995),
    ];
    paper
        .iter()
        .map(|&(width, mb, gbps)| {
            let layout = StorageLayout::for_config(&cfg, width);
            E1Row {
                width,
                paper_memory_mb: mb,
                measured_memory_mb: layout.model_megabytes(),
                paper_bandwidth_gbps: gbps,
                measured_bandwidth_gbps: layout.worst_case_bandwidth_gb_per_s(),
            }
        })
        .collect()
}

/// E2 — synthesis results: power and area of the dedicated structures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct E2Report {
    /// Paper: power of one structure at 50 MHz (W).
    pub paper_structure_power_w: f64,
    /// Model: power of one fully-active structure (W).
    pub model_structure_power_w: f64,
    /// Paper: total power of two structures (W).
    pub paper_total_power_w: f64,
    /// Model: total power of two fully-active structures (W).
    pub model_total_power_w: f64,
    /// Paper: area of one structure (mm²).
    pub paper_structure_area_mm2: f64,
    /// Model: area of one structure (mm²).
    pub model_structure_area_mm2: f64,
    /// Paper: total area (mm²).
    pub paper_total_area_mm2: f64,
    /// Model: total area of two structures (mm²).
    pub model_total_area_mm2: f64,
    /// Average power measured on a real decode (clock gating active), W.
    pub measured_decode_power_w: f64,
    /// Measured OP-unit activity factor on that decode.
    pub measured_opu_activity: f64,
}

/// E2 — power/area calibration plus a measured clock-gated operating point.
pub fn e2_power_area() -> E2Report {
    let power = PowerModel::paper_calibrated();
    let area = AreaBudget::PAPER;
    // Measure a small hardware decode to get a realistic activity factor.
    let task = build_eval_task(250, 7);
    let rec = recognizer(&task, DecoderConfig::hardware(2)).expect("valid recogniser");
    let set = task.synthesize_test_set(3, 3, 0.3);
    let mut total_power = 0.0;
    let mut total_activity = 0.0;
    let mut n = 0.0;
    for (features, _) in &set {
        let result = rec.decode_features(features).expect("decode succeeds");
        if let Some(hw) = result.hardware {
            total_power += hw.energy.average_power_w();
            total_activity += hw.energy.opu_activity;
            n += 1.0;
        }
    }
    E2Report {
        paper_structure_power_w: 0.200,
        model_structure_power_w: power.structure_full_power_w(),
        paper_total_power_w: 0.400,
        model_total_power_w: 2.0 * power.structure_full_power_w(),
        paper_structure_area_mm2: 2.2,
        model_structure_area_mm2: area.structure_mm2(),
        paper_total_area_mm2: 4.4,
        model_total_area_mm2: area.total_mm2(2),
        measured_decode_power_w: if n > 0.0 { total_power / n } else { 0.0 },
        measured_opu_activity: if n > 0.0 { total_activity / n } else { 0.0 },
    }
}

/// One row of the WER-versus-mantissa experiment (E3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct E3Row {
    /// Mantissa width of the stored acoustic model and datapath.
    pub width: MantissaWidth,
    /// Measured word error rate on the synthetic WSJ5K-like test set.
    pub wer: f64,
    /// The paper's bound for this width (it reports "< 10 %" for 23 and 12
    /// bits), if stated.
    pub paper_bound: Option<f64>,
    /// Number of reference words scored.
    pub reference_words: usize,
}

/// E3 — WER versus mantissa width on the synthetic WSJ5K-like task.
///
/// `scale` divides the 5 000-word vocabulary (larger = smaller/faster task);
/// `utterances` × `words_per_utterance` defines the test set.
pub fn e3_wer_vs_mantissa(
    scale: usize,
    utterances: usize,
    words_per_utterance: usize,
    noise_std: f32,
) -> Vec<E3Row> {
    let task = build_eval_task(scale, 13);
    let set = task.synthesize_test_set(utterances, words_per_utterance, noise_std);
    MantissaWidth::PAPER_SWEEP
        .iter()
        .map(|&width| {
            let model = quantize_model(&task.acoustic_model, width).expect("quantise");
            let mut config = DecoderConfig::hardware(2);
            if let ScoringBackendKind::Hardware(soc) = &mut config.backend {
                soc.opu = OpuConfig::with_width(width);
            }
            let rec = Recognizer::new(
                model,
                task.dictionary.clone(),
                task.language_model.clone(),
                config,
            )
            .expect("valid recogniser");
            let mut total = WerScore::default();
            for (features, reference) in &set {
                let result = rec.decode_features(features).expect("decode succeeds");
                total = total.merge(&align_wer(reference, &result.hypothesis.words));
            }
            E3Row {
                width,
                wer: total.wer(),
                paper_bound: match width.bits() {
                    23 | 12 => Some(0.10),
                    _ => None,
                },
                reference_words: total.reference_words,
            }
        })
        .collect()
}

/// E4 — active senone fraction with and without word-decode feedback.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct E4Report {
    /// Mean fraction of the senone inventory evaluated per frame with the
    /// feedback path enabled (the paper's architecture).
    pub with_feedback_mean: f64,
    /// Worst-frame fraction with feedback.
    pub with_feedback_peak: f64,
    /// Fraction evaluated when the feedback is disabled (always 1.0: every
    /// senone scored every frame).
    pub without_feedback_mean: f64,
    /// The paper's claim: active senones stay below this fraction.
    pub paper_claim_upper_bound: f64,
    /// Dictionary storage sizing that accompanies the claim (the 11 Mb
    /// figure).
    pub dictionary_megabits: f64,
}

/// E4 — word-decode feedback keeps the active senone set small.
pub fn e4_active_senones(scale: usize, utterances: usize) -> E4Report {
    let task = build_eval_task(scale, 21);
    let set = task.synthesize_test_set(utterances, 4, 0.3);

    let run = |feedback: bool| -> (f64, f64) {
        let mut config = DecoderConfig::hardware(2);
        config.gmm_selection = GmmSelectionConfig {
            senone_feedback: feedback,
            ..GmmSelectionConfig::default()
        };
        let rec = recognizer(&task, config).expect("valid recogniser");
        let mut mean = 0.0;
        let mut peak = 0.0f64;
        for (features, _) in &set {
            let result = rec.decode_features(features).expect("decode succeeds");
            mean += result.stats.mean_active_senone_fraction();
            peak = peak.max(result.stats.peak_active_senone_fraction());
        }
        (mean / set.len() as f64, peak)
    };
    let (with_mean, with_peak) = run(true);
    let (without_mean, _) = run(false);
    E4Report {
        with_feedback_mean: with_mean,
        with_feedback_peak: with_peak,
        without_feedback_mean: without_mean,
        paper_claim_upper_bound: 0.5,
        dictionary_megabits: DictionaryStorage::paper_estimate().total_megabits(),
    }
}

/// E5 — real-time capacity of the 50 MHz structures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct E5Report {
    /// Cycles one OP unit needs per senone (paper geometry).
    pub cycles_per_senone: u64,
    /// Senones one structure can score in a 10 ms frame at 50 MHz.
    pub senones_per_frame_one_structure: usize,
    /// Senones two structures can score (the paper's configuration).
    pub senones_per_frame_two_structures: usize,
    /// That capacity as a fraction of the 6 000-senone inventory — the paper
    /// requires the active fraction to stay below ~50 % for real time.
    pub capacity_fraction_of_inventory: f64,
    /// Worst-frame real-time factor measured on a synthetic decode with two
    /// structures.
    pub measured_worst_rtf: f64,
    /// Fraction of frames meeting the 10 ms budget on that decode.
    pub measured_real_time_fraction: f64,
}

/// E5 — two structures support real time at the feedback-limited workload.
pub fn e5_realtime_capacity(scale: usize) -> E5Report {
    let opu = OpuConfig::default();
    let paper = AcousticModelConfig::paper_default();
    let per_senone = opu.cycles_per_senone(paper.feature_dim, paper.num_components);
    let one = opu.senone_capacity(paper.feature_dim, paper.num_components, 500_000);
    let two = 2 * one;

    let task = build_eval_task(scale, 31);
    let rec = recognizer(&task, DecoderConfig::hardware(2)).expect("valid recogniser");
    let set = task.synthesize_test_set(3, 4, 0.3);
    let mut worst = 0.0f64;
    let mut rt_frac = 0.0;
    for (features, _) in &set {
        let result = rec.decode_features(features).expect("decode succeeds");
        if let Some(hw) = result.hardware {
            worst = worst.max(hw.worst_frame_rtf);
            rt_frac += hw.real_time_fraction;
        }
    }
    E5Report {
        cycles_per_senone: per_senone,
        senones_per_frame_one_structure: one,
        senones_per_frame_two_structures: two,
        capacity_fraction_of_inventory: two as f64 / paper.num_senones as f64,
        measured_worst_rtf: worst,
        measured_real_time_fraction: rt_frac / set.len() as f64,
    }
}

/// E6 — the Section V related-work comparison.
pub fn e6_comparison(active_senones_per_frame: usize) -> ComparisonTable {
    ComparisonTable::section_v(
        &AcousticModelConfig::paper_default(),
        active_senones_per_frame,
    )
}

/// One row of the Conditional Down Sampling ablation (E7).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct E7Row {
    /// CDS period (1 = off; 2 = score every other frame; …).
    pub cds_period: usize,
    /// Word error rate at this setting.
    pub wer: f64,
    /// Mean senones scored per frame.
    pub mean_senones_per_frame: f64,
    /// Mean OP-unit activity factor.
    pub opu_activity: f64,
    /// Average SoC power on the decode, watts.
    pub average_power_w: f64,
}

/// E7 — Conditional Down Sampling "has the potential to cut the power usage
/// by a considerable margin": the power/accuracy trade-off of the frame layer.
pub fn e7_cds_ablation(scale: usize, utterances: usize) -> Vec<E7Row> {
    let task = build_eval_task(scale, 41);
    let set = task.synthesize_test_set(utterances, 4, 0.3);
    [1usize, 2, 3]
        .iter()
        .map(|&period| {
            let mut config = DecoderConfig::hardware(2);
            config.gmm_selection = GmmSelectionConfig::with_cds(period);
            let rec = recognizer(&task, config).expect("valid recogniser");
            let mut wer = WerScore::default();
            let mut senones = 0.0;
            let mut activity = 0.0;
            let mut power = 0.0;
            let mut n = 0.0;
            for (features, reference) in &set {
                let result = rec.decode_features(features).expect("decode succeeds");
                wer = wer.merge(&align_wer(reference, &result.hypothesis.words));
                senones += result.stats.mean_senones_scored();
                if let Some(hw) = result.hardware {
                    activity += hw.energy.opu_activity;
                    power += hw.energy.average_power_w();
                    n += 1.0;
                }
            }
            E7Row {
                cds_period: period,
                wer: wer.wer(),
                mean_senones_per_frame: senones / set.len() as f64,
                opu_activity: if n > 0.0 { activity / n } else { 0.0 },
                average_power_w: if n > 0.0 { power / n } else { 0.0 },
            }
        })
        .collect()
}

/// F1 — per-stage breakdown of one decoded frame (Figure 1's pipeline).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct F1Report {
    /// Mean OP-unit cycles per frame (busiest structure).
    pub opu_cycles_per_frame: f64,
    /// Mean Viterbi-unit cycles per frame (busiest structure).
    pub viterbi_cycles_per_frame: f64,
    /// Mean host-CPU cycles per frame (frontend + word decode + best path).
    pub host_cycles_per_frame: f64,
    /// Mean flash bytes per frame.
    pub flash_bytes_per_frame: f64,
    /// Accelerator cycle budget per frame (50 MHz × 10 ms).
    pub cycle_budget: u64,
}

/// F1 — stage-by-stage workload of the Figure 1 pipeline on a real decode.
pub fn f1_pipeline_breakdown(scale: usize) -> F1Report {
    let task = build_eval_task(scale, 51);
    let rec = recognizer(&task, DecoderConfig::hardware(2)).expect("valid recogniser");
    let (features, _) = task.synthesize_utterance(4, 0.3, 5);
    let result = rec.decode_features(&features).expect("decode succeeds");
    let soc_cfg = SocConfig::default();
    // Recover per-frame means from the per-utterance report by decoding once
    // and averaging the per-frame numbers the stats carry.
    let frames = result.stats.num_frames().max(1) as f64;
    let hw = result.hardware.expect("hardware decode");
    // Approximate per-frame unit cycles from activity factors and the budget.
    let budget = soc_cfg.cycle_budget_per_frame();
    F1Report {
        opu_cycles_per_frame: hw.energy.opu_activity * budget as f64,
        viterbi_cycles_per_frame: hw.energy.viterbi_activity * budget as f64,
        host_cycles_per_frame: soc_cfg.host.software_cycles_per_frame(
            result.stats.mean_active_hmms() as usize,
            result.lattice.len() / result.stats.num_frames().max(1),
        ) as f64,
        flash_bytes_per_frame: hw.mean_bandwidth_gb_per_s * 1.0e9 * 0.010,
        cycle_budget: budget,
    }
    .clamp_frames(frames)
}

impl F1Report {
    fn clamp_frames(self, _frames: f64) -> Self {
        self
    }
}

/// F2 — Observation Probability unit microarchitecture figures (Figure 2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct F2Report {
    /// Log-add SRAM size in bytes (paper: 512).
    pub logadd_sram_bytes: usize,
    /// Maximum absolute error of the table-based log-add.
    pub logadd_max_error: f32,
    /// Cycles per Gaussian (39 dimensions) including pipeline fill.
    pub cycles_per_gaussian: u64,
    /// Cycles per senone (8 Gaussians + mixture log-adds).
    pub cycles_per_senone: u64,
    /// Largest senone-score deviation of the hardware path from the exact
    /// software reference on a probe model.
    pub max_score_deviation: f32,
}

/// F2 — characterises the OP unit against its reference.
pub fn f2_opu_figures() -> F2Report {
    let table = LogAddTable::new();
    let opu_cfg = OpuConfig::default();
    let paper = AcousticModelConfig::paper_default();
    let cycles_per_gaussian = opu_cfg.pipeline_fill_cycles
        + opu_cfg.cycles_per_dimension * paper.feature_dim as u64
        + opu_cfg.swa_cycles;

    // Probe accuracy on a small model.
    let model = AcousticModel::untrained(AcousticModelConfig::tiny()).expect("tiny model");
    let mut opu = ObservationProbabilityUnit::new(opu_cfg.clone());
    let x: Vec<f32> = (0..model.feature_dim())
        .map(|d| 0.21 * d as f32 - 0.4)
        .collect();
    opu.load_feature_vector(&x);
    let mut max_dev = 0.0f32;
    for i in 0..model.senones().len() {
        let id = asr_acoustic::SenoneId(i as u32);
        let hw = opu.score_senone(&model, id).expect("score").raw();
        let sw = model.score_senone(id, &x).expect("score").raw();
        max_dev = max_dev.max((hw - sw).abs());
    }
    F2Report {
        logadd_sram_bytes: table.config().sram_bytes(),
        logadd_max_error: table.max_abs_error(),
        cycles_per_gaussian,
        cycles_per_senone: opu_cfg.cycles_per_senone(paper.feature_dim, paper.num_components),
        max_score_deviation: max_dev,
    }
}

/// One row of the Viterbi-unit characterisation (Figure 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct F3Row {
    /// Number of emitting HMM states.
    pub states: usize,
    /// Cycles per HMM per frame on the unit.
    pub cycles_per_hmm: u64,
    /// HMM updates per 10 ms frame one unit sustains at 50 MHz.
    pub hmms_per_frame: u64,
}

/// F3 — Viterbi unit throughput for the 3/5/7-state topologies it supports.
pub fn f3_viterbi_figures() -> Vec<F3Row> {
    let cfg = ViterbiUnitConfig::default();
    [3usize, 5, 7]
        .iter()
        .map(|&states| {
            let cycles = cfg.cycles_per_hmm(states, 2);
            F3Row {
                states,
                cycles_per_hmm: cycles,
                hmms_per_frame: 500_000 / cycles.max(1),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// shared helpers
// ---------------------------------------------------------------------------

/// Builds the scaled WSJ5K-like evaluation task used by the decode-based
/// experiments.
pub fn build_eval_task(scale: usize, seed: u64) -> SyntheticTask {
    Wsj5kTask::evaluation(scale, seed).expect("valid task configuration")
}

/// Builds the task for the batch-decoding benches: a heavy acoustic model
/// (paper-like 39-dim, 8-component mixtures over 40 phones → 120 senones)
/// with deliberately *short* utterances, so the per-utterance model-cache
/// build cost is a large fraction of each decode — the regime a streaming
/// server lives in and the one `decode_batch` exists to amortise.
pub fn batch_bench_task(seed: u64) -> SyntheticTask {
    let config = asr_corpus::TaskConfig {
        vocabulary_size: 30,
        num_phones: 40,
        feature_dim: 39,
        components_per_senone: 8,
        word_length_range: (2, 3),
        ..asr_corpus::TaskConfig::small()
    };
    asr_corpus::TaskGenerator::new(seed)
        .generate(&config)
        .expect("valid batch bench task")
}

/// Builds the task for the serving/sharding benches: like
/// [`batch_bench_task`] but with a larger senone inventory (50 phones → 150
/// senones) and heavier mixtures (12 components), so each frame's active-set
/// scoring is heavy enough for a sharded scorer's thread-level parallelism
/// to pay for its spawn overhead — the regime a saturated serving node lives
/// in.
pub fn serve_bench_task(seed: u64) -> SyntheticTask {
    let config = asr_corpus::TaskConfig {
        vocabulary_size: 30,
        num_phones: 50,
        feature_dim: 39,
        components_per_senone: 12,
        word_length_range: (2, 3),
        ..asr_corpus::TaskConfig::small()
    };
    asr_corpus::TaskGenerator::new(seed)
        .generate(&config)
        .expect("valid serve bench task")
}

/// Builds a recogniser over a synthetic task.
pub fn recognizer(
    task: &SyntheticTask,
    config: DecoderConfig,
) -> Result<Recognizer, asr_core::DecodeError> {
    Recognizer::new(
        task.acoustic_model.clone(),
        task.dictionary.clone(),
        task.language_model.clone(),
        config,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_reproduces_paper_table() {
        for row in e1_memory_bandwidth() {
            assert!(
                (row.measured_memory_mb - row.paper_memory_mb).abs() < 0.02,
                "{row:?}"
            );
            assert!(
                (row.measured_bandwidth_gbps - row.paper_bandwidth_gbps).abs() < 0.002,
                "{row:?}"
            );
        }
    }

    #[test]
    fn e2_matches_synthesis_numbers() {
        let r = e2_power_area();
        assert!((r.model_structure_power_w - r.paper_structure_power_w).abs() < 1e-9);
        assert!((r.model_total_power_w - r.paper_total_power_w).abs() < 1e-9);
        assert!((r.model_structure_area_mm2 - r.paper_structure_area_mm2).abs() < 1e-9);
        assert!((r.model_total_area_mm2 - r.paper_total_area_mm2).abs() < 1e-9);
        // Clock gating keeps the measured decode power below the ceiling.
        assert!(r.measured_decode_power_w < r.model_total_power_w);
        assert!(r.measured_opu_activity <= 1.0);
    }

    #[test]
    fn e3_wer_stays_low_at_all_paper_widths() {
        let rows = e3_wer_vs_mantissa(400, 3, 3, 0.3);
        assert_eq!(rows.len(), 3);
        for row in &rows {
            if let Some(bound) = row.paper_bound {
                assert!(
                    row.wer < bound,
                    "{} WER {} exceeds paper bound {bound}",
                    row.width,
                    row.wer
                );
            }
            assert!(row.reference_words > 0);
        }
        // 12-bit mantissa is not catastrophically worse than full precision.
        assert!(rows[2].wer <= rows[0].wer + 0.15);
    }

    #[test]
    fn e4_feedback_keeps_active_fraction_below_claim() {
        let r = e4_active_senones(400, 2);
        assert!(r.with_feedback_mean < r.paper_claim_upper_bound, "{r:?}");
        assert!(r.with_feedback_mean < r.without_feedback_mean);
        assert!((r.without_feedback_mean - 1.0).abs() < 1e-9);
        assert!((r.dictionary_megabits - 11.0).abs() < 0.2);
    }

    #[test]
    fn e5_capacity_matches_paper_argument() {
        let r = e5_realtime_capacity(400);
        assert!(r.cycles_per_senone > 300 && r.cycles_per_senone < 450);
        assert!(r.senones_per_frame_two_structures > 2000);
        assert!(r.capacity_fraction_of_inventory < 0.5);
        assert!(r.measured_worst_rtf < 1.0, "{r:?}");
        assert!(r.measured_real_time_fraction > 0.99);
    }

    #[test]
    fn e6_table_has_expected_shape() {
        let t = e6_comparison(2_500);
        assert_eq!(t.rows().len(), 5);
        assert!(t.ours().is_real_time());
    }

    #[test]
    fn e7_cds_reduces_work() {
        let rows = e7_cds_ablation(400, 2);
        assert_eq!(rows.len(), 3);
        // More aggressive CDS → fewer senones scored and no higher activity.
        assert!(rows[1].mean_senones_per_frame < rows[0].mean_senones_per_frame);
        assert!(rows[2].mean_senones_per_frame < rows[1].mean_senones_per_frame);
        assert!(rows[1].opu_activity <= rows[0].opu_activity + 1e-9);
        assert!(rows[1].average_power_w <= rows[0].average_power_w + 1e-9);
    }

    #[test]
    fn figure_reports() {
        let f2 = f2_opu_figures();
        assert_eq!(f2.logadd_sram_bytes, 512);
        assert!(f2.logadd_max_error < 0.02);
        assert!(f2.max_score_deviation < 0.1);
        assert!(f2.cycles_per_senone > f2.cycles_per_gaussian);
        let f3 = f3_viterbi_figures();
        assert_eq!(f3.len(), 3);
        assert!(f3[0].cycles_per_hmm < f3[2].cycles_per_hmm);
        assert!(f3[0].hmms_per_frame > f3[2].hmms_per_frame);
        let f1 = f1_pipeline_breakdown(400);
        assert!(f1.opu_cycles_per_frame > 0.0);
        assert!(f1.host_cycles_per_frame > 0.0);
        assert_eq!(f1.cycle_budget, 500_000);
    }
}
