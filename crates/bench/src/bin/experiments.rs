//! Regenerates every table and figure of the paper's evaluation.
//!
//! Usage:
//! ```text
//! cargo run -p asr-bench --bin experiments --release            # everything
//! cargo run -p asr-bench --bin experiments --release -- e1 e3  # a subset
//! ```

use asr_bench::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).map(|a| a.to_lowercase()).collect();
    let want = |id: &str| args.is_empty() || args.iter().any(|a| a == id || a == "all");

    println!("== Reproduction of 'Architecture for Low Power Large Vocabulary Speech Recognition' (SOCC 2006) ==\n");

    if want("e1") {
        println!("-- E1: acoustic-model memory and worst-case bandwidth vs mantissa width --");
        println!(
            "{:<16} {:>14} {:>14} {:>16} {:>16}",
            "mantissa", "paper MB", "measured MB", "paper GB/s", "measured GB/s"
        );
        for row in e1_memory_bandwidth() {
            println!(
                "{:<16} {:>14.2} {:>14.2} {:>16.3} {:>16.3}",
                format!("{}", row.width),
                row.paper_memory_mb,
                row.measured_memory_mb,
                row.paper_bandwidth_gbps,
                row.measured_bandwidth_gbps
            );
        }
        println!();
    }

    if want("e2") {
        println!("-- E2: synthesis results (power / area of the dedicated structures) --");
        let r = e2_power_area();
        println!(
            "one structure power   : paper {:.3} W, model {:.3} W",
            r.paper_structure_power_w, r.model_structure_power_w
        );
        println!(
            "two structures power  : paper {:.3} W, model {:.3} W",
            r.paper_total_power_w, r.model_total_power_w
        );
        println!(
            "one structure area    : paper {:.1} mm2, model {:.1} mm2",
            r.paper_structure_area_mm2, r.model_structure_area_mm2
        );
        println!(
            "two structures area   : paper {:.1} mm2, model {:.1} mm2",
            r.paper_total_area_mm2, r.model_total_area_mm2
        );
        println!(
            "measured decode power : {:.3} W (clock-gated, OPU activity {:.2})",
            r.measured_decode_power_w, r.measured_opu_activity
        );
        println!();
    }

    if want("e3") {
        println!("-- E3: word error rate vs mantissa width (synthetic WSJ5K-like task) --");
        println!(
            "{:<16} {:>10} {:>14} {:>12}",
            "mantissa", "WER", "paper bound", "ref words"
        );
        for row in e3_wer_vs_mantissa(200, 6, 4, 0.3) {
            println!(
                "{:<16} {:>9.1}% {:>14} {:>12}",
                format!("{}", row.width),
                100.0 * row.wer,
                row.paper_bound
                    .map(|b| format!("< {:.0}%", 100.0 * b))
                    .unwrap_or_else(|| "-".into()),
                row.reference_words
            );
        }
        println!();
    }

    if want("e4") {
        println!("-- E4: active senone fraction (word-decode feedback) --");
        let r = e4_active_senones(200, 3);
        println!(
            "with feedback   : mean {:.1}% of inventory, peak {:.1}%",
            100.0 * r.with_feedback_mean,
            100.0 * r.with_feedback_peak
        );
        println!(
            "without feedback: mean {:.1}%",
            100.0 * r.without_feedback_mean
        );
        println!(
            "paper claim     : well below {:.0}%",
            100.0 * r.paper_claim_upper_bound
        );
        println!(
            "dictionary size : {:.1} Mb (paper: ~11 Mb)",
            r.dictionary_megabits
        );
        println!();
    }

    if want("e5") {
        println!("-- E5: real-time capacity of the 50 MHz structures --");
        let r = e5_realtime_capacity(200);
        println!(
            "cycles per senone (39 dims x 8 Gaussians) : {}",
            r.cycles_per_senone
        );
        println!(
            "senones per 10 ms frame, 1 structure      : {}",
            r.senones_per_frame_one_structure
        );
        println!(
            "senones per 10 ms frame, 2 structures     : {}",
            r.senones_per_frame_two_structures
        );
        println!(
            "capacity as fraction of 6000 senones      : {:.1}%",
            100.0 * r.capacity_fraction_of_inventory
        );
        println!(
            "measured worst frame RTF (2 structures)   : {:.3}",
            r.measured_worst_rtf
        );
        println!(
            "measured real-time frame fraction         : {:.1}%",
            100.0 * r.measured_real_time_fraction
        );
        println!();
    }

    if want("e6") {
        println!("-- E6: related-work comparison (paper Section V) --");
        print!("{}", e6_comparison(2_500).to_text());
        println!();
    }

    if want("e7") {
        println!("-- E7: Conditional Down Sampling ablation (four-layer fast GMM scheme) --");
        println!(
            "{:<12} {:>10} {:>20} {:>14} {:>12}",
            "CDS period", "WER", "senones/frame", "OPU activity", "power (W)"
        );
        for row in e7_cds_ablation(200, 3) {
            println!(
                "{:<12} {:>9.1}% {:>20.1} {:>14.3} {:>12.3}",
                row.cds_period,
                100.0 * row.wer,
                row.mean_senones_per_frame,
                row.opu_activity,
                row.average_power_w
            );
        }
        println!();
    }

    if want("f1") {
        println!("-- F1: Figure 1 pipeline breakdown (per frame) --");
        let r = f1_pipeline_breakdown(200);
        println!(
            "OP unit cycles/frame (busiest structure) : {:.0} of {}",
            r.opu_cycles_per_frame, r.cycle_budget
        );
        println!(
            "Viterbi unit cycles/frame                 : {:.0}",
            r.viterbi_cycles_per_frame
        );
        println!(
            "host CPU cycles/frame (software stages)   : {:.0}",
            r.host_cycles_per_frame
        );
        println!(
            "flash traffic per frame                   : {:.0} bytes",
            r.flash_bytes_per_frame
        );
        println!();
    }

    if want("f2") {
        println!("-- F2: Observation Probability unit (Figure 2) --");
        let r = f2_opu_figures();
        println!(
            "logadd SRAM           : {} bytes (paper: 512)",
            r.logadd_sram_bytes
        );
        println!("logadd max abs error  : {:.4} nats", r.logadd_max_error);
        println!("cycles per Gaussian   : {}", r.cycles_per_gaussian);
        println!("cycles per senone     : {}", r.cycles_per_senone);
        println!("max |hw - sw| score   : {:.4} nats", r.max_score_deviation);
        println!();
    }

    if want("f3") {
        println!("-- F3: Viterbi decoder unit (Figure 3) --");
        println!(
            "{:<10} {:>16} {:>18}",
            "states", "cycles/HMM", "HMMs per frame"
        );
        for row in f3_viterbi_figures() {
            println!(
                "{:<10} {:>16} {:>18}",
                row.states, row.cycles_per_hmm, row.hmms_per_frame
            );
        }
        println!();
    }
}
