//! CI bench-regression gate.
//!
//! Compares a freshly measured `BENCH_pr.json` (written by the criterion
//! shim when `LVCSR_BENCH_JSON` is set) against the committed
//! `BENCH_baseline.json` and fails if any benchmark shared by both files
//! regressed by more than the allowed fraction (default 15 %).  It also
//! enforces the ratio claims: `decode_batch` of 32 utterances must beat 32
//! sequential `decode_features` calls, the 4-shard scorer must beat the
//! single SoC (multi-core hosts), the persistent shard worker pool must not
//! lose to per-frame scoped spawning, a 4-worker serving front must beat a
//! single worker (multi-core hosts), chunked streaming must stay within
//! 15 % of offline decoding, and telemetry must cost nothing when disabled
//! (within 2 % of an uninstrumented loop) and stay within 15 % when enabled.
//!
//! Usage:
//!
//! ```text
//! bench_gate <BENCH_baseline.json> <BENCH_pr.json> [--max-regression 0.15]
//! ```
//!
//! Benchmarks present in only one file are reported but never fail the gate,
//! so benches can be added or retired without ceremony.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// The two benchmarks backing the batch-amortisation acceptance check.
///
/// This pair is judged as a *ratio* (batch must beat sequential), not by the
/// per-benchmark regression rule: the pair's absolute numbers swing with
/// allocator/machine noise far more than the single-utterance benches, and
/// the property that matters — batching wins — is scale-free.
const BATCH_BENCH: &str = "decode_batch_amortisation/batch_32";
const SEQUENTIAL_BENCH: &str = "decode_batch_amortisation/sequential_32";

/// The two benchmarks backing the scale-out acceptance check: the 4-shard
/// `ShardedScorer` against the single-SoC path on the same 32-utterance
/// workload.  Also judged as a ratio, for the same noise reasons as the
/// batch pair — but the ratio's meaning depends on the host (see
/// [`shard_ratio_limit`]).
const SHARDED_BENCH: &str = "serve_throughput/sharded4_soc_32";
const SINGLE_SOC_BENCH: &str = "serve_throughput/single_soc_32";

/// The two benchmarks backing the shard-dispatch acceptance check: the same
/// 200-frame workload through the persistent worker pool and through the
/// per-frame scoped-spawn dispatch.  Judged as a ratio (the pool must not
/// lose to respawning threads every frame), with the same host-dependent
/// limit as the scale-out pair: strict on hosts that measured with real
/// parallelism, an overhead bound on single-core hosts where both
/// dispatches serialise onto one CPU.
const POOL_BENCH: &str = "shard_scaling/pool_200f";
const SCOPED_BENCH: &str = "shard_scaling/scoped_200f";

/// The two benchmarks backing the streaming-overhead acceptance check: the
/// same 32-utterance workload decoded through chunked streaming sessions and
/// through the offline batch path (both with one recycled decoder).  Judged
/// as a ratio: streaming must stay within [`STREAM_OVERHEAD_LIMIT`] of
/// offline, or incremental operation has started to tax throughput.
const STREAM_BENCH: &str = "stream_latency/stream_32";
const STREAM_OFFLINE_BENCH: &str = "stream_latency/offline_32";

/// Allowed stream-vs-offline overhead: 15 %.
const STREAM_OVERHEAD_LIMIT: f64 = 1.15;

/// The three benchmarks around the telemetry-overhead acceptance check:
/// the same 32-utterance decode loop bare, with the serving front's full
/// instrumentation sequence against a disabled `Telemetry` handle, and with
/// an enabled handle recording into a memory sink.  Informational context
/// only (ratio-checked, so exempt from the regression rule): their
/// sequential means drift with host load far more than the bound being
/// enforced.  The *gated* numbers are the paired-round ratio entries the
/// bench records alongside them ([`OBS_DISABLED_RATIO_KEY`] /
/// [`OBS_ENABLED_RATIO_KEY`]).
const OBS_BASELINE_BENCH: &str = "obs_overhead/baseline_32";
const OBS_DISABLED_BENCH: &str = "obs_overhead/disabled_32";
const OBS_ENABLED_BENCH: &str = "obs_overhead/enabled_32";

/// Paired-measurement overhead ratios recorded by the `obs_overhead` bench:
/// each is the median over interleaved rounds of (instrumented pass time /
/// bare pass time), so host-load drift cancels instead of masquerading as
/// overhead.  Metadata (dimensionless, not a timing), consumed only by the
/// telemetry-overhead check: disabled telemetry must be indistinguishable
/// from absent telemetry ([`OBS_DISABLED_LIMIT`]), enabled telemetry must
/// stay cheap enough to flip on in production ([`OBS_ENABLED_LIMIT`]).
const OBS_DISABLED_RATIO_KEY: &str = "obs_overhead/disabled_over_baseline";
const OBS_ENABLED_RATIO_KEY: &str = "obs_overhead/enabled_over_baseline";

/// Allowed overhead of disabled telemetry over the bare loop: 2 %.
const OBS_DISABLED_LIMIT: f64 = 1.02;

/// Allowed overhead of enabled telemetry over the bare loop: 15 %.
const OBS_ENABLED_LIMIT: f64 = 1.15;

/// The two benchmarks backing the multi-worker serving acceptance check:
/// the same 32-utterance closed-loop flood through four decoder workers and
/// through one, each worker over its own plain SoC scorer.  Judged as a
/// host-gated ratio like the shard pair: four lanes must genuinely win on a
/// multi-core measurement host, and may only cost bounded overhead on a
/// single core where the lanes serialise.
const WORKERS4_BENCH: &str = "serve_throughput/workers4_soc_32";
const WORKERS1_BENCH: &str = "serve_throughput/workers1_soc_32";

/// The shared host-metadata record (`asr_bench::bench_json::HOST_CPUS_KEY`):
/// the CPU count of the machine that *measured* the results, written once
/// per document by every bench target that feeds a host-gated check.  Not a
/// benchmark — it is excluded from the regression comparison and consumed
/// only by the ratio checks, so the strict multi-core rules are applied
/// exactly when the measurement itself had parallelism available (not when
/// the gate happens to run on a different host class than the bench did).
const HOST_CPUS_KEY: &str = asr_bench::bench_json::HOST_CPUS_KEY;

/// Pre-consolidation spellings of the same record (one copy per bench
/// target).  Still read as fallbacks so the gate keeps working against
/// baseline documents measured before the shared record existed.
const LEGACY_SERVE_CPUS_KEY: &str = "serve_throughput/host_cpus";
const LEGACY_SHARD_CPUS_KEY: &str = "shard_scaling/host_cpus";

/// The measured per-frame pool dispatch overhead over the inline floor —
/// informational (recorded alongside the results, printed by the bench),
/// not a gated benchmark: it is a small difference of two noisy numbers.
const POOL_OVERHEAD_KEY: &str = "shard_scaling/pool_dispatch_overhead_per_frame_seconds";

fn metadata(name: &str) -> bool {
    name == HOST_CPUS_KEY
        || name == LEGACY_SERVE_CPUS_KEY
        || name == LEGACY_SHARD_CPUS_KEY
        || name == POOL_OVERHEAD_KEY
        || name == OBS_DISABLED_RATIO_KEY
        || name == OBS_ENABLED_RATIO_KEY
}

fn ratio_checked(name: &str) -> bool {
    name == BATCH_BENCH
        || name == SEQUENTIAL_BENCH
        || name == SHARDED_BENCH
        || name == SINGLE_SOC_BENCH
        || name == POOL_BENCH
        || name == SCOPED_BENCH
        || name == STREAM_BENCH
        || name == STREAM_OFFLINE_BENCH
        || name == WORKERS4_BENCH
        || name == WORKERS1_BENCH
        || name == OBS_BASELINE_BENCH
        || name == OBS_DISABLED_BENCH
        || name == OBS_ENABLED_BENCH
}

/// The sharded/single ratio the gate tolerates for a host with `cpus`
/// CPUs.  The sharded scorer's speedup comes from scoring shard slices on
/// real threads, so on a multi-core host it must genuinely win (< 1.0).  On
/// a single-core host a parallel speedup is physically impossible (the
/// scorer falls back to sequential fan-out) and the gate can only bound the
/// sharding *overhead*: 10 % on top of the single-SoC path.
fn shard_ratio_limit(cpus: usize) -> f64 {
    if cpus > 1 {
        1.0
    } else {
        1.10
    }
}

/// The document format (writer: the criterion shim; shared reader:
/// `asr_bench::bench_json`, whose format-snapshot test pins it).
use asr_bench::bench_json::parse_flat_map;

fn load(path: &str) -> Result<BTreeMap<String, f64>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let map = parse_flat_map(&text);
    if map.is_empty() {
        return Err(format!("{path} contains no benchmark results"));
    }
    Ok(map)
}

/// One host-sensitive ratio claim: `contender` must beat `reference` when
/// the numbers were measured with real parallelism, and stay within the
/// single-core overhead bound otherwise (see [`shard_ratio_limit`]).
struct HostGatedRatio<'a> {
    /// Human label for the report line (e.g. "shard scale-out").
    label: &'a str,
    /// Benchmark key that must win (or stay within the overhead bound).
    contender: &'a str,
    /// Benchmark key it is judged against.
    reference: &'a str,
    /// CPU count of the *measurement* host, with its provenance.
    cpus: usize,
    cpus_source: &'a str,
    /// Extra text appended to the report line (e.g. a recorded overhead).
    note: String,
}

fn check_host_gated_ratio(
    pr: &BTreeMap<String, f64>,
    failures: &mut Vec<String>,
    pr_path: &str,
    check: HostGatedRatio<'_>,
) {
    let short = |key: &str| key.rsplit('/').next().unwrap_or(key).to_string();
    let HostGatedRatio {
        label,
        contender,
        reference,
        cpus,
        cpus_source,
        note,
    } = check;
    match (pr.get(contender), pr.get(reference)) {
        (Some(&fast), Some(&slow)) => {
            let limit = shard_ratio_limit(cpus);
            println!(
                "{label} ({cpus} cpu(s), {cpus_source}): {} {} vs {} {} \
                 ({:.2}x, limit {limit:.2}x{note})",
                short(contender),
                format_time(fast),
                short(reference),
                format_time(slow),
                fast / slow,
            );
            if fast >= slow * limit {
                failures.push(if cpus > 1 {
                    format!(
                        "{} ({}) must beat {} ({}) when measured on a {cpus}-cpu host",
                        short(contender),
                        format_time(fast),
                        short(reference),
                        format_time(slow)
                    )
                } else {
                    format!(
                        "{} ({}) exceeds the single-core overhead bound \
                         ({:.0}% over {}'s {})",
                        short(contender),
                        format_time(fast),
                        (shard_ratio_limit(1) - 1.0) * 100.0,
                        short(reference),
                        format_time(slow)
                    )
                });
            }
        }
        _ => failures.push(format!("missing {contender} / {reference} in {pr_path}")),
    }
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1.0e-3 {
        format!("{:.3} ms", seconds * 1.0e3)
    } else if seconds >= 1.0e-6 {
        format!("{:.3} µs", seconds * 1.0e6)
    } else {
        format!("{:.1} ns", seconds * 1.0e9)
    }
}

fn run(baseline_path: &str, pr_path: &str, max_regression: f64) -> Result<(), String> {
    let baseline = load(baseline_path)?;
    let pr = load(pr_path)?;
    let mut failures = Vec::new();

    println!(
        "{:<44} {:>12} {:>12} {:>9}",
        "benchmark", "baseline", "pr", "delta"
    );
    for (name, &pr_mean) in pr.iter().filter(|(name, _)| !metadata(name)) {
        match baseline.get(name) {
            Some(&base_mean) if base_mean > 0.0 => {
                let delta = pr_mean / base_mean - 1.0;
                let gated = !ratio_checked(name);
                let marker = if gated && delta > max_regression {
                    "  <-- REGRESSION"
                } else if !gated {
                    "  (ratio-checked)"
                } else {
                    ""
                };
                println!(
                    "{:<44} {:>12} {:>12} {:>+8.1}%{marker}",
                    name,
                    format_time(base_mean),
                    format_time(pr_mean),
                    delta * 100.0,
                );
                if gated && delta > max_regression {
                    failures.push(format!(
                        "{name} regressed {:.1}% (limit {:.0}%)",
                        delta * 100.0,
                        max_regression * 100.0
                    ));
                }
            }
            _ => println!(
                "{:<44} {:>12} {:>12}   (new)",
                name,
                "-",
                format_time(pr_mean)
            ),
        }
    }
    for name in baseline
        .keys()
        .filter(|n| !pr.contains_key(*n) && !metadata(n))
    {
        println!("{name:<44} (not measured in this run)");
    }

    // The amortisation claim: one warmed scorer across the batch must beat
    // per-utterance scorers.
    match (pr.get(BATCH_BENCH), pr.get(SEQUENTIAL_BENCH)) {
        (Some(&batch), Some(&sequential)) => {
            println!(
                "\nbatch amortisation: batch_32 {} vs sequential_32 {} ({:.2}x)",
                format_time(batch),
                format_time(sequential),
                sequential / batch
            );
            if batch >= sequential {
                failures.push(format!(
                    "decode_batch(32) ({}) must beat 32x decode_features ({})",
                    format_time(batch),
                    format_time(sequential)
                ));
            }
        }
        _ => failures.push(format!(
            "missing {BATCH_BENCH} / {SEQUENTIAL_BENCH} in {pr_path}"
        )),
    }

    // The scale-out claim: the 4-shard scorer must beat the single SoC when
    // the numbers were measured with real parallelism available (and stay
    // within the overhead bound when they were measured on a single core,
    // where no parallel speedup is possible).  The bench records its host's
    // CPU count next to the results; the gate's own host is only a fallback
    // for documents produced before that entry existed.
    let recorded_cpus = [HOST_CPUS_KEY, LEGACY_SERVE_CPUS_KEY, LEGACY_SHARD_CPUS_KEY]
        .iter()
        .find_map(|key| pr.get(*key).copied())
        .filter(|&cpus| cpus >= 1.0);
    let (cpus, cpus_source) = match recorded_cpus {
        Some(recorded) => (recorded as usize, "measurement host"),
        None => (
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            "gate host, unrecorded",
        ),
    };
    check_host_gated_ratio(
        &pr,
        &mut failures,
        pr_path,
        HostGatedRatio {
            label: "shard scale-out",
            contender: SHARDED_BENCH,
            reference: SINGLE_SOC_BENCH,
            cpus,
            cpus_source,
            note: String::new(),
        },
    );

    // The dispatch claim: the persistent worker pool must not lose to
    // spawning a fresh thread per shard per frame.  Strict (pool ≤ scoped)
    // when the numbers were measured with real parallelism; on a
    // single-core measurement host both dispatches serialise, so the gate
    // bounds the pool's overhead the same way the shard check does.
    check_host_gated_ratio(
        &pr,
        &mut failures,
        pr_path,
        HostGatedRatio {
            label: "pool dispatch",
            contender: POOL_BENCH,
            reference: SCOPED_BENCH,
            cpus,
            cpus_source,
            note: pr
                .get(POOL_OVERHEAD_KEY)
                .map(|&o| format!(", pool dispatch overhead {}/frame", format_time(o)))
                .unwrap_or_default(),
        },
    );

    // The multi-worker claim: four decoder workers draining one queue must
    // beat a single worker on the same 32-utterance flood when measured with
    // real parallelism (and may only cost bounded coordination overhead on a
    // single core, where the lanes serialise onto one CPU).
    check_host_gated_ratio(
        &pr,
        &mut failures,
        pr_path,
        HostGatedRatio {
            label: "multi-worker serving",
            contender: WORKERS4_BENCH,
            reference: WORKERS1_BENCH,
            cpus,
            cpus_source,
            note: String::new(),
        },
    );

    // The streaming claim: chunked incremental decoding must stay within the
    // overhead bound of the offline batch path on the same workload.  Both
    // sides come from the same run, so the check is machine-independent.
    match (pr.get(STREAM_BENCH), pr.get(STREAM_OFFLINE_BENCH)) {
        (Some(&stream), Some(&offline)) => {
            println!(
                "stream overhead: stream_32 {} vs offline_32 {} ({:.2}x, limit {:.2}x)",
                format_time(stream),
                format_time(offline),
                stream / offline,
                STREAM_OVERHEAD_LIMIT
            );
            if stream >= offline * STREAM_OVERHEAD_LIMIT {
                failures.push(format!(
                    "stream_32 ({}) exceeds the {:.0}% streaming-overhead bound over \
                     offline_32 ({})",
                    format_time(stream),
                    (STREAM_OVERHEAD_LIMIT - 1.0) * 100.0,
                    format_time(offline)
                ));
            }
        }
        _ => failures.push(format!(
            "missing {STREAM_BENCH} / {STREAM_OFFLINE_BENCH} in {pr_path}"
        )),
    }

    // The telemetry claim, judged on the paired-round ratios the bench
    // records (sequential means drift too much to resolve a 2 % bound):
    // disabled telemetry must be free, enabled telemetry merely cheap.
    for (key, limit, label) in [
        (OBS_DISABLED_RATIO_KEY, OBS_DISABLED_LIMIT, "disabled"),
        (OBS_ENABLED_RATIO_KEY, OBS_ENABLED_LIMIT, "enabled"),
    ] {
        match pr.get(key) {
            Some(&ratio) => {
                println!(
                    "telemetry overhead ({label}): {ratio:.4}x of the bare decode loop \
                     (limit {limit:.2}x, paired rounds)"
                );
                if ratio >= limit {
                    failures.push(format!(
                        "{key} ({ratio:.4}x) exceeds the {:.0}% {label}-telemetry bound",
                        (limit - 1.0) * 100.0
                    ));
                }
            }
            None => failures.push(format!("missing {key} in {pr_path}")),
        }
    }

    if failures.is_empty() {
        println!(
            "\nbench gate: OK ({} benchmarks compared)",
            pr.keys().filter(|n| !metadata(n)).count()
        );
        Ok(())
    } else {
        Err(failures.join("\n"))
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional = Vec::new();
    let mut max_regression = 0.15f64;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--max-regression" {
            match args.get(i + 1).and_then(|v| v.parse().ok()) {
                Some(v) => max_regression = v,
                None => {
                    eprintln!("--max-regression needs a numeric argument");
                    return ExitCode::FAILURE;
                }
            }
            i += 2;
        } else {
            positional.push(args[i].clone());
            i += 1;
        }
    }
    let [baseline, pr] = positional.as_slice() else {
        eprintln!("usage: bench_gate <baseline.json> <pr.json> [--max-regression 0.15]");
        return ExitCode::FAILURE;
    };
    match run(baseline, pr, max_regression) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("\nbench gate: FAIL\n{e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The document format itself (snapshot of the shim's output, garbage
    // tolerance, round-trip) is pinned by `asr_bench::bench_json`'s tests;
    // here only the gate's own policy is covered.

    #[test]
    fn shard_gate_is_strict_only_with_real_parallelism() {
        // Multi-core hosts must show a genuine win; a single core can only
        // bound the overhead.
        assert_eq!(shard_ratio_limit(4), 1.0);
        assert_eq!(shard_ratio_limit(2), 1.0);
        assert!(shard_ratio_limit(1) > 1.0);
        assert!(shard_ratio_limit(1) < 1.2);
    }

    #[test]
    fn ratio_checked_benches_skip_the_regression_rule() {
        for name in [
            BATCH_BENCH,
            SEQUENTIAL_BENCH,
            SHARDED_BENCH,
            SINGLE_SOC_BENCH,
            POOL_BENCH,
            SCOPED_BENCH,
            STREAM_BENCH,
            STREAM_OFFLINE_BENCH,
            WORKERS4_BENCH,
            WORKERS1_BENCH,
            OBS_BASELINE_BENCH,
            OBS_DISABLED_BENCH,
            OBS_ENABLED_BENCH,
        ] {
            assert!(ratio_checked(name), "{name}");
        }
        assert!(!ratio_checked("serve_throughput/queue_sharded4_soc_32"));
        assert!(!ratio_checked("decode_batch/simd/32"));
        // The scaling-curve midpoint and the open-loop smoke are real
        // measurements: regression-gated, not part of a ratio pair.
        assert!(!ratio_checked("serve_throughput/workers2_soc_32"));
        assert!(!ratio_checked("serve_throughput/open_loop_workers2_32"));
        // The inline floor is a stable single-thread measurement: plain
        // regression-gated.
        assert!(!ratio_checked("shard_scaling/inline_200f"));
        assert!(!metadata("shard_scaling/inline_200f"));
        // The p50 chunk latency is a real measurement: regression-gated, not
        // ratio-checked, not metadata.
        assert!(!ratio_checked("stream_latency/p50_chunk_seconds"));
        assert!(!metadata("stream_latency/p50_chunk_seconds"));
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // the bounds under test are consts
    fn telemetry_overhead_bounds_are_ordered() {
        // Disabled telemetry is held to a far tighter bound than enabled:
        // the disabled path is a branch, not a feature.
        assert!(OBS_DISABLED_LIMIT > 1.0);
        assert!(OBS_DISABLED_LIMIT < OBS_ENABLED_LIMIT);
        assert!((OBS_DISABLED_LIMIT - 1.02).abs() < 1e-12);
        assert!((OBS_ENABLED_LIMIT - 1.15).abs() < 1e-12);
        assert!(!metadata(OBS_BASELINE_BENCH));
        assert!(!metadata(OBS_DISABLED_BENCH));
        assert!(!metadata(OBS_ENABLED_BENCH));
        // The paired ratios are dimensionless gate inputs, not timings: they
        // must be excluded from the per-benchmark regression comparison.
        assert!(metadata(OBS_DISABLED_RATIO_KEY));
        assert!(metadata(OBS_ENABLED_RATIO_KEY));
    }

    #[test]
    fn host_cpus_entry_is_metadata_not_a_benchmark() {
        assert!(metadata(HOST_CPUS_KEY));
        // The pre-consolidation per-target spellings stay recognised, so
        // older baseline documents do not suddenly grow phantom benchmarks.
        assert!(metadata(LEGACY_SERVE_CPUS_KEY));
        assert!(metadata(LEGACY_SHARD_CPUS_KEY));
        assert!(metadata(POOL_OVERHEAD_KEY));
        assert!(!metadata(SHARDED_BENCH));
        assert!(!metadata(POOL_BENCH));
        assert!(!metadata(WORKERS4_BENCH));
        // The flat parser reads the recorded count back as a number.
        let map = parse_flat_map("{\n  \"host/cpus\": 4\n}\n");
        assert_eq!(map[HOST_CPUS_KEY], 4.0);
    }
}
