//! CI bench-regression gate.
//!
//! Compares a freshly measured `BENCH_pr.json` (written by the criterion
//! shim when `LVCSR_BENCH_JSON` is set) against the committed
//! `BENCH_baseline.json` and fails if any benchmark shared by both files
//! regressed by more than the allowed fraction (default 15 %).  It also
//! enforces the batch-decoding amortisation claim: `decode_batch` of 32
//! utterances must beat 32 sequential `decode_features` calls.
//!
//! Usage:
//!
//! ```text
//! bench_gate <BENCH_baseline.json> <BENCH_pr.json> [--max-regression 0.15]
//! ```
//!
//! Benchmarks present in only one file are reported but never fail the gate,
//! so benches can be added or retired without ceremony.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// The two benchmarks backing the batch-amortisation acceptance check.
///
/// This pair is judged as a *ratio* (batch must beat sequential), not by the
/// per-benchmark regression rule: the pair's absolute numbers swing with
/// allocator/machine noise far more than the single-utterance benches, and
/// the property that matters — batching wins — is scale-free.
const BATCH_BENCH: &str = "decode_batch_amortisation/batch_32";
const SEQUENTIAL_BENCH: &str = "decode_batch_amortisation/sequential_32";

fn ratio_checked(name: &str) -> bool {
    name == BATCH_BENCH || name == SEQUENTIAL_BENCH
}

/// Parses the flat `{"group/bench": mean_seconds, ...}` documents the
/// criterion shim writes.
///
/// KEEP IN SYNC with `json_out` in `shims/criterion/src/lib.rs` — that module
/// is the writer of this format (it carries the mirror of this note).  The
/// shim stays API-compatible with crates.io criterion, so the parser cannot
/// be imported from it; `format_snapshot_parses` below pins the format.
fn parse_flat_map(text: &str) -> BTreeMap<String, f64> {
    let mut map = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some(rest) = line.strip_prefix('"') else {
            continue;
        };
        let Some((key, value)) = rest.split_once("\":") else {
            continue;
        };
        if let Ok(v) = value.trim().parse::<f64>() {
            map.insert(key.to_string(), v);
        }
    }
    map
}

fn load(path: &str) -> Result<BTreeMap<String, f64>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let map = parse_flat_map(&text);
    if map.is_empty() {
        return Err(format!("{path} contains no benchmark results"));
    }
    Ok(map)
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1.0e-3 {
        format!("{:.3} ms", seconds * 1.0e3)
    } else if seconds >= 1.0e-6 {
        format!("{:.3} µs", seconds * 1.0e6)
    } else {
        format!("{:.1} ns", seconds * 1.0e9)
    }
}

fn run(baseline_path: &str, pr_path: &str, max_regression: f64) -> Result<(), String> {
    let baseline = load(baseline_path)?;
    let pr = load(pr_path)?;
    let mut failures = Vec::new();

    println!(
        "{:<44} {:>12} {:>12} {:>9}",
        "benchmark", "baseline", "pr", "delta"
    );
    for (name, &pr_mean) in &pr {
        match baseline.get(name) {
            Some(&base_mean) if base_mean > 0.0 => {
                let delta = pr_mean / base_mean - 1.0;
                let gated = !ratio_checked(name);
                let marker = if gated && delta > max_regression {
                    "  <-- REGRESSION"
                } else if !gated {
                    "  (ratio-checked)"
                } else {
                    ""
                };
                println!(
                    "{:<44} {:>12} {:>12} {:>+8.1}%{marker}",
                    name,
                    format_time(base_mean),
                    format_time(pr_mean),
                    delta * 100.0,
                );
                if gated && delta > max_regression {
                    failures.push(format!(
                        "{name} regressed {:.1}% (limit {:.0}%)",
                        delta * 100.0,
                        max_regression * 100.0
                    ));
                }
            }
            _ => println!(
                "{:<44} {:>12} {:>12}   (new)",
                name,
                "-",
                format_time(pr_mean)
            ),
        }
    }
    for name in baseline.keys().filter(|n| !pr.contains_key(*n)) {
        println!("{name:<44} (not measured in this run)");
    }

    // The amortisation claim: one warmed scorer across the batch must beat
    // per-utterance scorers.
    match (pr.get(BATCH_BENCH), pr.get(SEQUENTIAL_BENCH)) {
        (Some(&batch), Some(&sequential)) => {
            println!(
                "\nbatch amortisation: batch_32 {} vs sequential_32 {} ({:.2}x)",
                format_time(batch),
                format_time(sequential),
                sequential / batch
            );
            if batch >= sequential {
                failures.push(format!(
                    "decode_batch(32) ({}) must beat 32x decode_features ({})",
                    format_time(batch),
                    format_time(sequential)
                ));
            }
        }
        _ => failures.push(format!(
            "missing {BATCH_BENCH} / {SEQUENTIAL_BENCH} in {pr_path}"
        )),
    }

    if failures.is_empty() {
        println!("\nbench gate: OK ({} benchmarks compared)", pr.len());
        Ok(())
    } else {
        Err(failures.join("\n"))
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional = Vec::new();
    let mut max_regression = 0.15f64;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--max-regression" {
            match args.get(i + 1).and_then(|v| v.parse().ok()) {
                Some(v) => max_regression = v,
                None => {
                    eprintln!("--max-regression needs a numeric argument");
                    return ExitCode::FAILURE;
                }
            }
            i += 2;
        } else {
            positional.push(args[i].clone());
            i += 1;
        }
    }
    let [baseline, pr] = positional.as_slice() else {
        eprintln!("usage: bench_gate <baseline.json> <pr.json> [--max-regression 0.15]");
        return ExitCode::FAILURE;
    };
    match run(baseline, pr, max_regression) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("\nbench gate: FAIL\n{e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A verbatim snapshot of the criterion shim's `render_flat_map` output.
    /// If the shim's format changes, this test (and `parse_flat_map`) must be
    /// updated with it — see the KEEP IN SYNC notes in both files.
    const SHIM_OUTPUT: &str = "{\n  \"decode_batch_amortisation/batch_32\": 3.950898177514793e-3,\n  \"e5_decode_utterance/software_simd\": 1.3807006081734087e-4\n}\n";

    #[test]
    fn format_snapshot_parses() {
        let map = parse_flat_map(SHIM_OUTPUT);
        assert_eq!(map.len(), 2);
        assert!((map["decode_batch_amortisation/batch_32"] - 3.950898177514793e-3).abs() < 1e-12);
        assert!((map["e5_decode_utterance/software_simd"] - 1.3807006081734087e-4).abs() < 1e-12);
    }

    #[test]
    fn parser_skips_garbage_lines() {
        assert!(parse_flat_map("{\n not json \n}\n").is_empty());
        assert!(parse_flat_map("").is_empty());
    }
}
