//! CI telemetry-artifact validator.
//!
//! Reads the `facts.jsonl` a run directory's [`asr_obs::RunDirSink`] wrote
//! and checks the document is well-formed end to end:
//!
//! - every line parses as one flat JSON fact with `kind` and `ts_us`;
//! - the first record is the `host` metadata fact;
//! - timestamps never go backwards in file order (the sink is append-only
//!   behind a lock, so emission order is write order);
//! - every `span` fact carries `trace`, `seq` and `event` fields, with
//!   per-event payload fields present (`finished` has an `outcome`,
//!   `rejected` a `scope`, `enqueued` a `depth`, …);
//! - within every trace, sequence numbers strictly increase, the first
//!   event is `admitted`, and exactly one terminal (`finished`/`rejected`)
//!   closes the trace — no orphaned or double-terminated requests.
//!
//! Usage: `obs_validate <facts.jsonl>`.  Exits non-zero with a line-numbered
//! report on the first malformed record or any unbalanced trace.

use asr_obs::{Fact, FieldValue};
use std::collections::BTreeMap;
use std::process::ExitCode;

fn u64_field(fact: &Fact, name: &str) -> Result<u64, String> {
    fact.field(name)
        .and_then(FieldValue::as_u64)
        .ok_or_else(|| format!("missing u64 field {name:?}"))
}

fn str_field<'f>(fact: &'f Fact, name: &str) -> Result<&'f str, String> {
    fact.field(name)
        .and_then(FieldValue::as_str)
        .ok_or_else(|| format!("missing string field {name:?}"))
}

/// The payload fields each span event kind must carry (beyond the envelope's
/// `trace`/`seq`/`event`).  Unknown event names are rejected: a telemetry
/// producer and this validator must agree on the taxonomy.
fn required_payload(event: &str) -> Result<&'static [&'static str], String> {
    Ok(match event {
        "admitted" => &["req"],
        "enqueued" => &["depth"],
        "batch_formed" => &["worker", "batch"],
        "decode_started" => &["worker"],
        "shard_dispatch" => &["shards", "threads"],
        "vad_speech_start" => &["frame"],
        "vad_speech_end" | "forced_endpoint" | "barge_in" => &["frames"],
        "partial_emitted" => &["words", "latency_us"],
        "finished" => &["outcome", "frames"],
        "rejected" => &["scope"],
        other => return Err(format!("unknown span event {other:?}")),
    })
}

struct TraceState {
    first_event: String,
    last_seq: u64,
    terminated: bool,
    events: usize,
}

fn validate(text: &str) -> Result<String, String> {
    let mut last_ts: Option<u64> = None;
    let mut traces: BTreeMap<u64, TraceState> = BTreeMap::new();
    let mut facts = 0usize;
    let mut spans = 0usize;

    for (index, line) in text.lines().enumerate() {
        let line_no = index + 1;
        if line.trim().is_empty() {
            continue;
        }
        let fact = Fact::parse_json(line).map_err(|e| format!("line {line_no}: {e}"))?;
        facts += 1;
        if facts == 1 && fact.kind != "host" {
            return Err(format!(
                "line {line_no}: first record must be the host fact, got kind {:?}",
                fact.kind
            ));
        }
        if let Some(previous) = last_ts {
            if fact.ts_us < previous {
                return Err(format!(
                    "line {line_no}: timestamp {} goes backwards (previous {previous})",
                    fact.ts_us
                ));
            }
        }
        last_ts = Some(fact.ts_us);

        if fact.kind != "span" {
            continue;
        }
        spans += 1;
        let trace = u64_field(&fact, "trace").map_err(|e| format!("line {line_no}: {e}"))?;
        let seq = u64_field(&fact, "seq").map_err(|e| format!("line {line_no}: {e}"))?;
        let event = str_field(&fact, "event")
            .map_err(|e| format!("line {line_no}: {e}"))?
            .to_string();
        for field in required_payload(&event).map_err(|e| format!("line {line_no}: {e}"))? {
            if fact.field(field).is_none() {
                return Err(format!(
                    "line {line_no}: span event {event:?} missing payload field {field:?}"
                ));
            }
        }
        if trace == 0 {
            // Worker-scope events outside any trace are legal.
            continue;
        }
        let terminal = matches!(event.as_str(), "finished" | "rejected");
        match traces.get_mut(&trace) {
            None => {
                traces.insert(
                    trace,
                    TraceState {
                        first_event: event.clone(),
                        last_seq: seq,
                        terminated: terminal,
                        events: 1,
                    },
                );
            }
            Some(state) => {
                if seq <= state.last_seq {
                    return Err(format!(
                        "line {line_no}: trace {trace} seq {seq} does not increase \
                         (previous {})",
                        state.last_seq
                    ));
                }
                if state.terminated {
                    return Err(format!(
                        "line {line_no}: trace {trace} emits {event:?} after its terminal"
                    ));
                }
                state.last_seq = seq;
                state.terminated = terminal;
                state.events += 1;
            }
        }
    }

    if facts == 0 {
        return Err("document contains no facts".into());
    }
    for (trace, state) in &traces {
        if state.first_event != "admitted" {
            return Err(format!(
                "trace {trace} opens with {:?}, must open with \"admitted\"",
                state.first_event
            ));
        }
        if !state.terminated {
            return Err(format!(
                "trace {trace} never terminated ({} events, no finished/rejected)",
                state.events
            ));
        }
    }
    Ok(format!(
        "obs_validate: OK ({facts} facts, {spans} span events, {} balanced traces)",
        traces.len()
    ))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [path] = args.as_slice() else {
        eprintln!("usage: obs_validate <facts.jsonl>");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("obs_validate: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match validate(&text) {
        Ok(report) => {
            println!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("obs_validate: FAIL in {path}\n{e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asr_obs::{host_fact, Outcome, RequestKind, SpanEvent, Telemetry};

    fn demo_document() -> String {
        // The host fact is stamped first so file order stays monotone, the
        // same order `RunDirSink::create` produces.
        let host = host_fact();
        let (telemetry, sink) = Telemetry::to_memory();
        let trace = telemetry.begin_trace();
        telemetry.emit(
            trace,
            &SpanEvent::Admitted {
                kind: RequestKind::Decode,
                model: Some("default".into()),
                tenant: None,
            },
        );
        telemetry.emit(trace, &SpanEvent::Enqueued { depth: 1 });
        telemetry.emit(trace, &SpanEvent::DecodeStarted { worker: 0 });
        telemetry.emit(
            trace,
            &SpanEvent::Finished {
                outcome: Outcome::Completed,
                frames: 42,
            },
        );
        let mut lines = vec![host.to_json()];
        lines.extend(sink.facts().iter().map(Fact::to_json));
        lines.join("\n") + "\n"
    }

    #[test]
    fn accepts_a_balanced_document() {
        let report = validate(&demo_document()).expect("valid document");
        assert!(report.contains("1 balanced traces"), "{report}");
        assert!(report.contains("4 span events"), "{report}");
    }

    #[test]
    fn rejects_structural_defects() {
        let good = demo_document();
        // Truncating the terminal leaves an unterminated trace.
        let truncated: String = good
            .lines()
            .filter(|l| !l.contains("\"finished\""))
            .collect::<Vec<_>>()
            .join("\n");
        assert!(validate(&truncated)
            .unwrap_err()
            .contains("never terminated"));
        // Dropping the host fact breaks the header rule.
        let headless: String = good.lines().skip(1).collect::<Vec<_>>().join("\n");
        assert!(validate(&headless)
            .unwrap_err()
            .contains("first record must be the host fact"));
        // A malformed line is reported with its line number.
        let corrupt = format!("{good}not json\n");
        assert!(validate(&corrupt).unwrap_err().starts_with("line 6:"));
        // Duplicate terminals are caught.
        let last = good.lines().last().expect("terminal line");
        let doubled = format!("{good}{last}\n");
        let err = validate(&doubled).unwrap_err();
        assert!(
            err.contains("after its terminal") || err.contains("does not increase"),
            "{err}"
        );
        // An empty document is rejected.
        assert!(validate("").unwrap_err().contains("no facts"));
    }
}
