//! The flat `{"group/benchmark": number}` bench-result document.
//!
//! The criterion shim writes this format under `LVCSR_BENCH_JSON` (see
//! `json_out` in `shims/criterion/src/lib.rs` — that copy is deliberately
//! standalone so the shim stays swappable for crates.io criterion, and
//! carries a KEEP IN SYNC note pointing here).  Everything *inside* this
//! crate — the `bench_gate` binary that reads the documents and the
//! `serve_throughput` bench that records metadata next to its results —
//! shares this one implementation instead of keeping format copies in sync
//! by comment discipline.

use std::collections::BTreeMap;

/// Parses the flat `{"key": number, ...}` documents the criterion shim
/// writes.  Tolerant line-based scan — not a general JSON parser; lines
/// that do not look like `"key": number` are skipped.
pub fn parse_flat_map(text: &str) -> BTreeMap<String, f64> {
    let mut map = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some(rest) = line.strip_prefix('"') else {
            continue;
        };
        let Some((key, value)) = rest.split_once("\":") else {
            continue;
        };
        if let Ok(v) = value.trim().parse::<f64>() {
            map.insert(key.to_string(), v);
        }
    }
    map
}

/// Renders the map back into the shim's document shape (sorted keys,
/// scientific-notation values, two-space indent).
pub fn render_flat_map(map: &BTreeMap<String, f64>) -> String {
    let mut out = String::from("{\n");
    let mut first = true;
    for (k, v) in map {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&format!("  \"{k}\": {v:e}"));
    }
    out.push_str("\n}\n");
    out
}

/// Key of the shared host-metadata record: the measurement host's logical
/// CPU count, written once per document (not once per bench target) so the
/// gate's host-dependent bounds — shard scaling, multi-worker serving — all
/// read the same figure.
pub const HOST_CPUS_KEY: &str = "host/cpus";

/// Records the measurement host's CPU count under [`HOST_CPUS_KEY`] in the
/// document named by `LVCSR_BENCH_JSON`.  Every bench target that feeds a
/// host-gated bound calls this; the record-entry merge makes the calls
/// idempotent and order-independent.  A no-op without the env var (plain
/// `cargo bench` timing runs write no document), and a warning — not a
/// failure — when the document cannot be written.
pub fn record_host_metadata() {
    let Ok(path) = std::env::var("LVCSR_BENCH_JSON") else {
        return;
    };
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    if let Err(e) = record_entry(&path, HOST_CPUS_KEY, cpus as f64) {
        eprintln!("warning: failed to record host metadata in {path}: {e}");
    }
}

/// Read-modify-writes one entry into the document at `path`, preserving
/// every other entry (the same merge discipline the shim uses, so bench
/// binaries and metadata writers can run in any order).
pub fn record_entry(path: &str, key: &str, value: f64) -> std::io::Result<()> {
    let mut map = std::fs::read_to_string(path)
        .map(|text| parse_flat_map(&text))
        .unwrap_or_default();
    map.insert(key.to_string(), value);
    std::fs::write(path, render_flat_map(&map))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A verbatim snapshot of the criterion shim's `render_flat_map` output.
    /// If the shim's format changes, this test (and this module) must be
    /// updated with it — see the KEEP IN SYNC note in
    /// `shims/criterion/src/lib.rs`.
    const SHIM_OUTPUT: &str = "{\n  \"decode_batch_amortisation/batch_32\": 3.950898177514793e-3,\n  \"e5_decode_utterance/software_simd\": 1.3807006081734087e-4\n}\n";

    #[test]
    fn format_snapshot_parses() {
        let map = parse_flat_map(SHIM_OUTPUT);
        assert_eq!(map.len(), 2);
        assert!((map["decode_batch_amortisation/batch_32"] - 3.950898177514793e-3).abs() < 1e-12);
        assert!((map["e5_decode_utterance/software_simd"] - 1.3807006081734087e-4).abs() < 1e-12);
    }

    #[test]
    fn render_and_parse_round_trip() {
        let map = parse_flat_map(SHIM_OUTPUT);
        assert_eq!(parse_flat_map(&render_flat_map(&map)), map);
    }

    #[test]
    fn parser_skips_garbage_lines() {
        assert!(parse_flat_map("{\n not json \n}\n").is_empty());
        assert!(parse_flat_map("").is_empty());
    }

    #[test]
    fn record_entry_merges_and_preserves() {
        let dir = std::env::temp_dir().join("lvcsr-bench-json-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("doc.json");
        let path = path.to_str().unwrap();
        let _ = std::fs::remove_file(path);
        // Creates the document when missing…
        record_entry(path, "g/a", 1.5).unwrap();
        // …merges into an existing one without clobbering other keys…
        record_entry(path, "g/b", 2.5e-3).unwrap();
        // …and overwrites a re-recorded key.
        record_entry(path, "g/a", 3.0).unwrap();
        let map = parse_flat_map(&std::fs::read_to_string(path).unwrap());
        assert_eq!(map.len(), 2);
        assert_eq!(map["g/a"], 3.0);
        assert!((map["g/b"] - 2.5e-3).abs() < 1e-12);
        std::fs::remove_file(path).unwrap();
    }
}
