//! # asr-bench — the experiment harness
//!
//! One function per table/figure of the paper's evaluation (see DESIGN.md's
//! experiment index).  Each function returns a structured result carrying the
//! paper's reported value next to the value measured on this reproduction, so
//! the `experiments` binary, the integration tests and EXPERIMENTS.md all draw
//! from the same code.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod bench_json;
pub mod experiments;

pub use experiments::{
    batch_bench_task, build_eval_task, e1_memory_bandwidth, e2_power_area, e3_wer_vs_mantissa,
    e4_active_senones, e5_realtime_capacity, e6_comparison, e7_cds_ablation, f1_pipeline_breakdown,
    f2_opu_figures, f3_viterbi_figures, serve_bench_task, E1Row, E2Report, E3Row, E4Report,
    E5Report, E7Row, F1Report, F2Report, F3Row,
};
