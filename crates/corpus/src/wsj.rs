//! The WSJ5K-like evaluation task.
//!
//! The paper evaluates word error rate on "the Wall Street Journal 5000
//! (WSJ5K)" task and sizes its memory figures for a 20 000-word WSJ
//! dictionary with 6 000 senones.  This module packages those geometries:
//!
//! * [`Wsj5kTask::paper_geometry`] — the full-size dimensions used purely for
//!   storage / bandwidth accounting (E1), where no decoding is needed;
//! * [`Wsj5kTask::evaluation`] — a scaled synthetic task that is actually
//!   decoded for the WER and active-senone experiments (E3, E4, E7), keeping
//!   the *structural* properties (triphone words, n-gram LM, senone sharing)
//!   while staying small enough to run in CI.

use crate::generator::{SyntheticTask, TaskConfig, TaskGenerator};
use crate::CorpusError;
use asr_acoustic::{AcousticModelConfig, HmmTopology};
use asr_lexicon::{DictionaryStorage, NGramOrder};

/// The WSJ5K-like task bundle.
#[derive(Debug, Clone)]
pub struct Wsj5kTask;

impl Wsj5kTask {
    /// The acoustic-model geometry the paper's sizing assumes: 6 000 senones,
    /// 8 Gaussians, 39 dimensions, 3-state HMMs, 51 phones.
    pub fn paper_geometry() -> AcousticModelConfig {
        AcousticModelConfig::paper_default()
    }

    /// The dictionary-sizing exercise of the paper (20 000 words, ~9
    /// triphones/word, 3-state HMMs → ≈ 11 Mb).
    pub fn paper_dictionary_storage() -> DictionaryStorage {
        DictionaryStorage::paper_estimate()
    }

    /// A scaled synthetic stand-in for the WSJ5K evaluation set: `scale` is a
    /// divisor applied to the 5 000-word vocabulary (e.g. `scale = 50` gives
    /// a 100-word task).  The phone inventory, HMM topology, trigram LM and
    /// per-word triphone statistics keep the WSJ shape.
    ///
    /// # Errors
    ///
    /// Returns [`CorpusError::InvalidConfig`] when the scale reduces the task
    /// below a usable size.
    pub fn evaluation(scale: usize, seed: u64) -> Result<SyntheticTask, CorpusError> {
        if scale == 0 {
            return Err(CorpusError::InvalidConfig("scale must be >= 1".into()));
        }
        let vocabulary = (5_000 / scale).max(10);
        let config = TaskConfig {
            vocabulary_size: vocabulary,
            num_phones: 40,
            feature_dim: 13,
            components_per_senone: 2,
            topology: HmmTopology::Three,
            // WSJ words average ≈ 9 triphones; keep the mean around 6–9 while
            // bounding the tail so the lexical tree stays balanced.
            word_length_range: (4, 10),
            mean_separation: 4.5,
            self_loop_prob: 0.6,
            lm_order: NGramOrder::Trigram,
            lm_training_sentences: 800,
        };
        TaskGenerator::new(seed).generate(&config)
    }

    /// A very small variant for fast tests (same structure, ~25 words).
    ///
    /// # Errors
    ///
    /// Propagates generation errors.
    pub fn evaluation_tiny(seed: u64) -> Result<SyntheticTask, CorpusError> {
        Self::evaluation(200, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometry_matches_results_table() {
        let g = Wsj5kTask::paper_geometry();
        assert_eq!(g.num_senones, 6_000);
        assert_eq!(g.num_components, 8);
        assert_eq!(g.feature_dim, 39);
        assert_eq!(g.params_per_senone(), 632);
        let d = Wsj5kTask::paper_dictionary_storage();
        assert_eq!(d.num_words, 20_000);
        assert!((d.total_megabits() - 11.0).abs() < 0.2);
    }

    #[test]
    fn scaled_evaluation_task() {
        let task = Wsj5kTask::evaluation(500, 1).unwrap();
        assert_eq!(task.dictionary.len(), 10);
        assert_eq!(task.config.num_phones, 40);
        assert_eq!(task.language_model.order(), NGramOrder::Trigram);
        let mean_len = task.dictionary.mean_phones_per_word();
        assert!((4.0..=10.0).contains(&mean_len), "{mean_len}");
        assert!(Wsj5kTask::evaluation(0, 1).is_err());
    }

    #[test]
    fn tiny_evaluation_task_is_decodeable_shape() {
        let task = Wsj5kTask::evaluation_tiny(2).unwrap();
        assert!(task.dictionary.len() >= 10);
        let (features, words) = task.synthesize_utterance(3, 0.3, 1);
        assert_eq!(words.len(), 3);
        assert!(features.len() > 10);
        assert!(features.iter().all(|f| f.len() == 13));
    }
}
