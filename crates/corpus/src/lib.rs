//! # asr-corpus — synthetic speech tasks for the LVCSR reproduction
//!
//! The paper evaluates on the Wall Street Journal task (WSJ5K / 20 000-word
//! dictionaries) decoded with CMU Sphinx acoustic models.  Neither the
//! recordings nor the trained models are available here, so this crate builds
//! the closest synthetic equivalent that exercises the same code paths:
//!
//! * [`TaskGenerator`] creates an acoustic model with well-separated senone
//!   distributions, a pronunciation dictionary with simple phonotactics, and
//!   an n-gram language model trained on sentences sampled from a hidden word
//!   chain;
//! * [`UtteranceSynthesizer`] samples utterances *from the acoustic model
//!   itself* (state durations from the transition matrix, feature vectors
//!   from the senone Gaussians) with controllable noise, so recognition
//!   difficulty is tunable and ground truth is exact;
//! * [`AudioSynthesizer`] renders a phone sequence to an actual waveform so
//!   the MFCC frontend (`asr-frontend`) is exercised from raw samples;
//! * [`ScenarioGenerator`] assembles labelled *adversarial* audio streams on
//!   top of it — noise ramps, hard clipping, far-field gain, back-to-back and
//!   long multi-utterance sessions — each carrying exact utterance boundaries
//!   and transcripts over the audio-trained [`ScenarioVoiceTask`] vocabulary,
//!   for streaming/endpointing tests;
//! * [`wer`] scores hypotheses against references with the standard
//!   edit-distance word error rate;
//! * [`Wsj5kTask`] packages the paper's evaluation geometry (5 000-word
//!   vocabulary, 51 phones, trigram LM) at full or reduced scale.
//!
//! # Example
//!
//! ```
//! use asr_corpus::{TaskConfig, TaskGenerator};
//! let task = TaskGenerator::new(42).generate(&TaskConfig::tiny()).unwrap();
//! assert!(task.dictionary.len() >= 10);
//! let (features, words) = task.synthesize_utterance(3, 0.2, 7);
//! assert_eq!(words.len(), 3);
//! assert!(!features.is_empty());
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod audio;
pub mod generator;
pub mod scenario;
pub mod synth;
pub mod wer;
pub mod wsj;

pub use audio::AudioSynthesizer;
pub use generator::{SyntheticTask, TaskConfig, TaskGenerator};
pub use scenario::{Scenario, ScenarioGenerator, ScenarioKind, ScenarioVoiceTask, SpeechSpan};
pub use synth::UtteranceSynthesizer;
pub use wer::{align_wer, WerScore};
pub use wsj::Wsj5kTask;

/// Errors produced while generating synthetic tasks.
#[derive(Debug, Clone, PartialEq)]
pub enum CorpusError {
    /// The task configuration was invalid.
    InvalidConfig(String),
    /// Generation produced an inconsistent artefact (propagated from the
    /// acoustic / lexicon crates).
    Generation(String),
}

impl core::fmt::Display for CorpusError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CorpusError::InvalidConfig(msg) => write!(f, "invalid task config: {msg}"),
            CorpusError::Generation(msg) => write!(f, "task generation failed: {msg}"),
        }
    }
}

impl std::error::Error for CorpusError {}

impl From<asr_acoustic::AcousticError> for CorpusError {
    fn from(e: asr_acoustic::AcousticError) -> Self {
        CorpusError::Generation(e.to_string())
    }
}

impl From<asr_lexicon::LexiconError> for CorpusError {
    fn from(e: asr_lexicon::LexiconError) -> Self {
        CorpusError::Generation(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_from() {
        assert!(CorpusError::InvalidConfig("x".into())
            .to_string()
            .contains("x"));
        let e: CorpusError = asr_acoustic::AcousticError::InvalidParameter("p".into()).into();
        assert!(matches!(e, CorpusError::Generation(_)));
        let e: CorpusError = asr_lexicon::LexiconError::UnknownWord("w".into()).into();
        assert!(matches!(e, CorpusError::Generation(_)));
    }
}
