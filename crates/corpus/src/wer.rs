//! Word-error-rate scoring (Levenshtein alignment over words).

use asr_lexicon::WordId;

/// The outcome of aligning a hypothesis against a reference.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WerScore {
    /// Substitutions.
    pub substitutions: usize,
    /// Deletions (reference words missing from the hypothesis).
    pub deletions: usize,
    /// Insertions (hypothesis words not in the reference).
    pub insertions: usize,
    /// Number of reference words.
    pub reference_words: usize,
}

impl WerScore {
    /// Total errors.
    pub fn errors(&self) -> usize {
        self.substitutions + self.deletions + self.insertions
    }

    /// Word error rate: errors / reference words (can exceed 1.0).
    pub fn wer(&self) -> f64 {
        if self.reference_words == 0 {
            return if self.errors() == 0 { 0.0 } else { 1.0 };
        }
        self.errors() as f64 / self.reference_words as f64
    }

    /// Word accuracy `1 − WER` (clamped at 0).
    pub fn accuracy(&self) -> f64 {
        (1.0 - self.wer()).max(0.0)
    }

    /// Merges two scores (e.g. accumulating over a test set).
    pub fn merge(&self, other: &WerScore) -> WerScore {
        WerScore {
            substitutions: self.substitutions + other.substitutions,
            deletions: self.deletions + other.deletions,
            insertions: self.insertions + other.insertions,
            reference_words: self.reference_words + other.reference_words,
        }
    }
}

/// Aligns a hypothesis word sequence against a reference and returns the
/// error counts (minimum-edit-distance alignment with unit costs).
pub fn align_wer(reference: &[WordId], hypothesis: &[WordId]) -> WerScore {
    let r = reference.len();
    let h = hypothesis.len();
    // dp[i][j] = (cost, subs, dels, ins) for ref[..i] vs hyp[..j]
    #[derive(Clone, Copy)]
    struct Cell {
        cost: usize,
        subs: usize,
        dels: usize,
        ins: usize,
    }
    let mut dp = vec![
        vec![
            Cell {
                cost: 0,
                subs: 0,
                dels: 0,
                ins: 0
            };
            h + 1
        ];
        r + 1
    ];
    for (i, row) in dp.iter_mut().enumerate().skip(1) {
        row[0] = Cell {
            cost: i,
            subs: 0,
            dels: i,
            ins: 0,
        };
    }
    for (j, cell) in dp[0].iter_mut().enumerate().skip(1) {
        *cell = Cell {
            cost: j,
            subs: 0,
            dels: 0,
            ins: j,
        };
    }
    for i in 1..=r {
        for j in 1..=h {
            if reference[i - 1] == hypothesis[j - 1] {
                dp[i][j] = dp[i - 1][j - 1];
                continue;
            }
            let sub = dp[i - 1][j - 1];
            let del = dp[i - 1][j];
            let ins = dp[i][j - 1];
            let best = if sub.cost <= del.cost && sub.cost <= ins.cost {
                Cell {
                    cost: sub.cost + 1,
                    subs: sub.subs + 1,
                    ..sub
                }
            } else if del.cost <= ins.cost {
                Cell {
                    cost: del.cost + 1,
                    dels: del.dels + 1,
                    ..del
                }
            } else {
                Cell {
                    cost: ins.cost + 1,
                    ins: ins.ins + 1,
                    ..ins
                }
            };
            dp[i][j] = best;
        }
    }
    let cell = dp[r][h];
    WerScore {
        substitutions: cell.subs,
        deletions: cell.dels,
        insertions: cell.ins,
        reference_words: r,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn w(ids: &[u32]) -> Vec<WordId> {
        ids.iter().map(|&i| WordId(i)).collect()
    }

    #[test]
    fn perfect_match() {
        let s = align_wer(&w(&[1, 2, 3]), &w(&[1, 2, 3]));
        assert_eq!(s.errors(), 0);
        assert_eq!(s.wer(), 0.0);
        assert_eq!(s.accuracy(), 1.0);
        assert_eq!(s.reference_words, 3);
    }

    #[test]
    fn pure_substitution() {
        let s = align_wer(&w(&[1, 2, 3]), &w(&[1, 9, 3]));
        assert_eq!(s.substitutions, 1);
        assert_eq!(s.deletions, 0);
        assert_eq!(s.insertions, 0);
        assert!((s.wer() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn pure_deletion_and_insertion() {
        let s = align_wer(&w(&[1, 2, 3]), &w(&[1, 3]));
        assert_eq!(s.deletions, 1);
        assert_eq!(s.errors(), 1);
        let s = align_wer(&w(&[1, 3]), &w(&[1, 2, 3]));
        assert_eq!(s.insertions, 1);
        assert_eq!(s.errors(), 1);
    }

    #[test]
    fn empty_sequences() {
        assert_eq!(align_wer(&[], &[]).wer(), 0.0);
        let s = align_wer(&[], &w(&[1, 2]));
        assert_eq!(s.insertions, 2);
        assert_eq!(s.wer(), 1.0); // empty reference with errors caps at 1.0
        let s = align_wer(&w(&[1, 2]), &[]);
        assert_eq!(s.deletions, 2);
        assert_eq!(s.wer(), 1.0);
        assert_eq!(s.accuracy(), 0.0);
    }

    #[test]
    fn completely_different() {
        let s = align_wer(&w(&[1, 2, 3, 4]), &w(&[5, 6, 7, 8]));
        assert_eq!(s.substitutions, 4);
        assert_eq!(s.wer(), 1.0);
    }

    #[test]
    fn merge_accumulates() {
        let a = align_wer(&w(&[1, 2]), &w(&[1, 3]));
        let b = align_wer(&w(&[4, 5, 6]), &w(&[4, 5, 6]));
        let m = a.merge(&b);
        assert_eq!(m.reference_words, 5);
        assert_eq!(m.errors(), 1);
        assert!((m.wer() - 0.2).abs() < 1e-12);
        assert_eq!(WerScore::default().wer(), 0.0);
    }

    proptest! {
        #[test]
        fn prop_wer_zero_iff_equal(seq in proptest::collection::vec(0u32..10, 0..12)) {
            let words = w(&seq);
            prop_assert_eq!(align_wer(&words, &words).errors(), 0);
        }

        #[test]
        fn prop_errors_bounded_by_max_len(
            a in proptest::collection::vec(0u32..10, 0..10),
            b in proptest::collection::vec(0u32..10, 0..10),
        ) {
            let s = align_wer(&w(&a), &w(&b));
            prop_assert!(s.errors() <= a.len().max(b.len()));
            prop_assert!(s.errors() >= a.len().abs_diff(b.len()));
        }

        #[test]
        fn prop_symmetric_cost(
            a in proptest::collection::vec(0u32..6, 0..8),
            b in proptest::collection::vec(0u32..6, 0..8),
        ) {
            // Total edit cost is symmetric. (The decomposition into
            // substitutions vs insertions+deletions can differ between the two
            // directions when several alignments tie, so only the total is
            // compared.)
            let ab = align_wer(&w(&a), &w(&b));
            let ba = align_wer(&w(&b), &w(&a));
            prop_assert_eq!(ab.errors(), ba.errors());
        }
    }
}
