//! Utterance synthesis: sampling feature-vector sequences from a task's own
//! acoustic model, so ground truth is exact and difficulty is controlled by a
//! single noise parameter.

use crate::generator::SyntheticTask;
use asr_lexicon::WordId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Samples utterances (word sequence + feature frames) from a task.
#[derive(Debug, Clone)]
pub struct UtteranceSynthesizer<'a> {
    task: &'a SyntheticTask,
    noise_std: f32,
}

impl<'a> UtteranceSynthesizer<'a> {
    /// Creates a synthesiser with a feature-noise level (standard deviation of
    /// Gaussian perturbation added on top of the sampled emission).
    pub fn new(task: &'a SyntheticTask, noise_std: f32) -> Self {
        UtteranceSynthesizer {
            task,
            noise_std: noise_std.max(0.0),
        }
    }

    /// The configured noise level.
    pub fn noise_std(&self) -> f32 {
        self.noise_std
    }

    /// Samples a word sequence from the language model's unigram/bigram
    /// structure (falls back to uniform if the LM has nothing to say).
    pub fn sample_words(&self, num_words: usize, rng: &mut StdRng) -> Vec<WordId> {
        let vocab = self.task.dictionary.len();
        let mut words = Vec::with_capacity(num_words);
        let mut history: Vec<WordId> = Vec::new();
        for _ in 0..num_words {
            // Sample proportionally to the LM probability over a random subset
            // (full normalisation over 20k words would be wasteful; the subset
            // keeps the LM's preferences while staying cheap).
            let candidates: Vec<WordId> = (0..vocab.min(16))
                .map(|_| WordId(rng.gen_range(0..vocab) as u32))
                .collect();
            let scored: Vec<(WordId, f64)> = candidates
                .iter()
                .map(|&w| {
                    (
                        w,
                        self.task.language_model.log_prob(&history, w).to_linear(),
                    )
                })
                .collect();
            let total: f64 = scored.iter().map(|(_, p)| p).sum();
            let mut pick = rng.gen::<f64>() * total.max(f64::MIN_POSITIVE);
            let mut chosen = scored[0].0;
            for (w, p) in &scored {
                pick -= p;
                chosen = *w;
                if pick <= 0.0 {
                    break;
                }
            }
            history.push(chosen);
            words.push(chosen);
        }
        words
    }

    /// Synthesises the feature frames of a given word sequence: for each
    /// phone, state durations are sampled from the HMM's self-loop
    /// probability and each frame is drawn from the state's senone mixture
    /// (one component picked by weight, then mean + scaled unit noise).
    pub fn synthesize_words(&self, words: &[WordId], rng: &mut StdRng) -> Vec<Vec<f32>> {
        let model = &self.task.acoustic_model;
        let states = model.config().topology.num_states();
        let self_loop = model.config().self_loop_prob;
        let mut frames = Vec::new();
        for &word in words {
            let pron = match self.task.dictionary.pronunciation(word) {
                Some(p) => p.clone(),
                None => continue,
            };
            for &phone in pron.phones() {
                let triphone = asr_acoustic::Triphone::context_independent(phone);
                let Some(tri_id) = model.triphones().resolve(&triphone) else {
                    continue;
                };
                let senones = model
                    .triphones()
                    .senones(tri_id)
                    .expect("resolved id")
                    .to_vec();
                for &state_senone in senones.iter().take(states) {
                    // Geometric duration with mean 1/(1 − self_loop), at least 1 frame.
                    let mut duration = 1usize;
                    while rng.gen::<f64>() < self_loop && duration < 30 {
                        duration += 1;
                    }
                    let mixture = model
                        .senones()
                        .get(state_senone)
                        .expect("senone exists")
                        .mixture();
                    for _ in 0..duration {
                        // Pick a component by weight.
                        let mut pick = rng.gen::<f32>();
                        let mut comp_idx = 0;
                        for (k, &w) in mixture.weights().iter().enumerate() {
                            pick -= w;
                            comp_idx = k;
                            if pick <= 0.0 {
                                break;
                            }
                        }
                        let comp = &mixture.components()[comp_idx];
                        let frame: Vec<f32> = comp
                            .mean()
                            .iter()
                            .zip(comp.variance())
                            .map(|(&m, &v)| {
                                let emission = gaussian_sample(rng) * v.sqrt();
                                let noise = gaussian_sample(rng) * self.noise_std;
                                m + emission * 0.3 + noise
                            })
                            .collect();
                        frames.push(frame);
                    }
                }
            }
        }
        frames
    }

    /// Samples a full utterance: word sequence + its feature frames.
    pub fn synthesize(&self, num_words: usize, seed: u64) -> (Vec<Vec<f32>>, Vec<WordId>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let words = self.sample_words(num_words, &mut rng);
        let frames = self.synthesize_words(&words, &mut rng);
        (frames, words)
    }
}

/// Standard normal sample via Box–Muller.
fn gaussian_sample(rng: &mut StdRng) -> f32 {
    let u1: f32 = rng.gen::<f32>().max(1.0e-7);
    let u2: f32 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{TaskConfig, TaskGenerator};

    fn task() -> SyntheticTask {
        TaskGenerator::new(11)
            .generate(&TaskConfig::tiny())
            .unwrap()
    }

    #[test]
    fn word_sampling_respects_vocab() {
        let t = task();
        let synth = UtteranceSynthesizer::new(&t, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let words = synth.sample_words(50, &mut rng);
        assert_eq!(words.len(), 50);
        assert!(words.iter().all(|w| (w.0 as usize) < t.dictionary.len()));
        assert_eq!(synth.noise_std(), 0.0);
        // Negative noise is clamped.
        assert_eq!(UtteranceSynthesizer::new(&t, -1.0).noise_std(), 0.0);
    }

    #[test]
    fn frames_track_the_senone_means_at_zero_noise() {
        let t = task();
        let synth = UtteranceSynthesizer::new(&t, 0.0);
        let mut rng = StdRng::seed_from_u64(2);
        let words = vec![asr_lexicon::WordId(0)];
        let frames = synth.synthesize_words(&words, &mut rng);
        assert!(!frames.is_empty());
        // Every frame should be closest (in the senone-scoring sense) to one of
        // the senones of the word's phones more often than not.
        let model = &t.acoustic_model;
        let pron = t.dictionary.pronunciation(asr_lexicon::WordId(0)).unwrap();
        let word_senones: std::collections::HashSet<u32> = pron
            .phones()
            .iter()
            .flat_map(|&p| {
                let id = model
                    .triphones()
                    .resolve(&asr_acoustic::Triphone::context_independent(p))
                    .unwrap();
                model.triphones().senones(id).unwrap().to_vec()
            })
            .map(|s| s.0)
            .collect();
        let mut hits = 0;
        for f in &frames {
            let scores = model.score_all_senones(f);
            let best = scores
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .unwrap()
                .0 as u32;
            if word_senones.contains(&best) {
                hits += 1;
            }
        }
        assert!(
            hits as f64 / frames.len() as f64 > 0.7,
            "{hits}/{}",
            frames.len()
        );
    }

    #[test]
    fn duration_grows_with_word_count() {
        let t = task();
        let synth = UtteranceSynthesizer::new(&t, 0.1);
        let (short, _) = synth.synthesize(1, 5);
        let (long, _) = synth.synthesize(6, 5);
        assert!(long.len() > short.len());
    }

    #[test]
    fn noise_increases_frame_variance() {
        let t = task();
        let mut rng_a = StdRng::seed_from_u64(3);
        let mut rng_b = StdRng::seed_from_u64(3);
        let clean = UtteranceSynthesizer::new(&t, 0.0);
        let noisy = UtteranceSynthesizer::new(&t, 5.0);
        let words = vec![asr_lexicon::WordId(1), asr_lexicon::WordId(2)];
        let a = clean.synthesize_words(&words, &mut rng_a);
        let b = noisy.synthesize_words(&words, &mut rng_b);
        // Same RNG stream and words → same frame count, different values.
        assert_eq!(a.len(), b.len());
        let diff: f32 = a
            .iter()
            .zip(&b)
            .flat_map(|(x, y)| x.iter().zip(y).map(|(u, v)| (u - v).abs()))
            .sum();
        assert!(diff > 1.0);
    }

    #[test]
    fn gaussian_sampler_is_roughly_standard() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| gaussian_sample(&mut rng)).collect();
        let mean: f32 = samples.iter().sum::<f32>() / n as f32;
        let var: f32 = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "{mean}");
        assert!((var - 1.0).abs() < 0.1, "{var}");
    }
}
