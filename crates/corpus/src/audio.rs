//! Waveform synthesis, so the MFCC frontend can be exercised from raw audio.
//!
//! Each phone is rendered as a sum of a few sinusoids at phone-specific
//! "formant" frequencies with an amplitude envelope — not natural speech, but
//! a signal whose short-time spectrum is stable within a phone and distinct
//! across phones, which is exactly the property the frontend + acoustic-model
//! pipeline relies on.

use asr_acoustic::PhoneId;
use asr_lexicon::{Dictionary, WordId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Renders phone sequences to PCM samples.
#[derive(Debug, Clone)]
pub struct AudioSynthesizer {
    sample_rate_hz: u32,
    phone_duration_s: f32,
    noise_amplitude: f32,
}

impl AudioSynthesizer {
    /// Creates a synthesiser.
    ///
    /// # Panics
    ///
    /// Panics if the sample rate is zero or the phone duration is not positive.
    pub fn new(sample_rate_hz: u32, phone_duration_s: f32, noise_amplitude: f32) -> Self {
        assert!(sample_rate_hz > 0, "sample rate must be positive");
        assert!(phone_duration_s > 0.0, "phone duration must be positive");
        AudioSynthesizer {
            sample_rate_hz,
            phone_duration_s,
            noise_amplitude: noise_amplitude.max(0.0),
        }
    }

    /// A 16 kHz synthesiser with 120 ms phones and mild noise.
    pub fn default_16khz() -> Self {
        Self::new(16_000, 0.12, 0.01)
    }

    /// The sample rate.
    pub fn sample_rate_hz(&self) -> u32 {
        self.sample_rate_hz
    }

    /// The three "formant" frequencies assigned to a phone (deterministic in
    /// the phone id, spread over 200–3800 Hz).
    pub fn formants(&self, phone: PhoneId) -> [f32; 3] {
        let p = phone.index() as f32;
        [
            200.0 + 67.0 * p,
            900.0 + 41.0 * ((p * 7.0) % 51.0),
            2200.0 + 29.0 * ((p * 13.0) % 51.0),
        ]
    }

    /// Renders one phone.
    pub fn render_phone(&self, phone: PhoneId, rng: &mut StdRng) -> Vec<f32> {
        let n = (self.sample_rate_hz as f32 * self.phone_duration_s) as usize;
        let formants = self.formants(phone);
        let amps = [0.6f32, 0.3, 0.15];
        (0..n)
            .map(|i| {
                let t = i as f32 / self.sample_rate_hz as f32;
                // Attack/decay envelope avoids clicks at phone boundaries.
                let env = (i.min(n - i) as f32 / (0.1 * n as f32)).min(1.0);
                let tone: f32 = formants
                    .iter()
                    .zip(&amps)
                    .map(|(&f, &a)| a * (2.0 * std::f32::consts::PI * f * t).sin())
                    .sum();
                let noise = (rng.gen::<f32>() - 0.5) * 2.0 * self.noise_amplitude;
                env * tone + noise
            })
            .collect()
    }

    /// Renders a phone sequence.
    pub fn render_phones(&self, phones: &[PhoneId], seed: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::new();
        for &p in phones {
            out.extend(self.render_phone(p, &mut rng));
        }
        out
    }

    /// Renders a word sequence by concatenating its pronunciations (with a
    /// short silence gap between words).
    pub fn render_words(&self, dictionary: &Dictionary, words: &[WordId], seed: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        let gap = vec![0.0f32; (self.sample_rate_hz as f32 * 0.03) as usize];
        let mut out = Vec::new();
        for &w in words {
            if let Some(pron) = dictionary.pronunciation(w) {
                for &p in pron.phones() {
                    out.extend(self.render_phone(p, &mut rng));
                }
            }
            out.extend_from_slice(&gap);
        }
        out
    }
}

impl Default for AudioSynthesizer {
    fn default() -> Self {
        Self::default_16khz()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asr_frontend::{Frontend, FrontendConfig};
    use asr_lexicon::Pronunciation;

    #[test]
    fn renders_expected_length() {
        let synth = AudioSynthesizer::default_16khz();
        assert_eq!(synth.sample_rate_hz(), 16_000);
        let mut rng = StdRng::seed_from_u64(0);
        let samples = synth.render_phone(PhoneId(3), &mut rng);
        assert_eq!(samples.len(), (16_000.0f32 * 0.12) as usize);
        assert!(samples.iter().all(|s| s.is_finite() && s.abs() <= 1.5));
        let seq = synth.render_phones(&[PhoneId(1), PhoneId(2), PhoneId(3)], 1);
        assert_eq!(seq.len(), 3 * samples.len());
    }

    #[test]
    fn different_phones_have_different_spectra() {
        let synth = AudioSynthesizer::new(16_000, 0.1, 0.0);
        let a = synth.formants(PhoneId(1));
        let b = synth.formants(PhoneId(30));
        assert_ne!(a, b);
        // Their MFCCs differ substantially.
        let cfg = FrontendConfig {
            cepstral_mean_norm: false,
            use_delta: false,
            use_delta_delta: false,
            ..FrontendConfig::default()
        };
        let fe = Frontend::new(cfg).unwrap();
        let fa = fe.process(&synth.render_phones(&[PhoneId(1)], 2));
        let fb = fe.process(&synth.render_phones(&[PhoneId(30)], 2));
        let mean = |fs: &Vec<Vec<f32>>| -> Vec<f32> {
            let mut m = vec![0.0f32; 13];
            for f in fs {
                for d in 0..13 {
                    m[d] += f[d] / fs.len() as f32;
                }
            }
            m
        };
        let dist: f32 = mean(&fa)
            .iter()
            .zip(&mean(&fb))
            .map(|(x, y)| (x - y).powi(2))
            .sum();
        assert!(dist > 0.5, "{dist}");
    }

    #[test]
    fn renders_words_with_gaps() {
        let mut dict = Dictionary::new();
        dict.add_word("ab", Pronunciation::new(vec![PhoneId(1), PhoneId(2)]))
            .unwrap();
        let synth = AudioSynthesizer::default_16khz();
        let audio = synth.render_words(&dict, &[WordId(0), WordId(0)], 3);
        // 2 words × 2 phones × 0.12 s + 2 gaps × 0.03 s.
        let expected = 2 * 2 * (16_000.0f32 * 0.12) as usize + 2 * (16_000.0f32 * 0.03) as usize;
        assert_eq!(audio.len(), expected);
        // Unknown word ids are skipped gracefully.
        let only_gap = synth.render_words(&dict, &[WordId(9)], 3);
        assert_eq!(only_gap.len(), (16_000.0f32 * 0.03) as usize);
    }

    #[test]
    #[should_panic(expected = "sample rate")]
    fn zero_sample_rate_panics() {
        AudioSynthesizer::new(0, 0.1, 0.0);
    }
}
