//! Synthetic task generation: acoustic model + dictionary + language model.

use crate::synth::UtteranceSynthesizer;
use crate::CorpusError;
use asr_acoustic::{
    AcousticModel, AcousticModelConfig, DiagGaussian, GaussianMixture, HmmTopology, PhoneId,
    SenoneId, SenonePool, TransitionMatrix, Triphone, TriphoneInventory,
};
use asr_lexicon::{Dictionary, NGramModel, NGramOrder, PhoneSet, Pronunciation, WordId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Dimensions of a synthetic task.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskConfig {
    /// Number of words in the dictionary.
    pub vocabulary_size: usize,
    /// Number of base phones used (≤ 51).
    pub num_phones: usize,
    /// Feature dimension.
    pub feature_dim: usize,
    /// Gaussian components per senone.
    pub components_per_senone: usize,
    /// HMM topology.
    pub topology: HmmTopology,
    /// Minimum / maximum phones per word.
    pub word_length_range: (usize, usize),
    /// Separation between different senones' means, in standard deviations —
    /// larger means an acoustically easier task.
    pub mean_separation: f32,
    /// Self-loop probability of the HMMs.
    pub self_loop_prob: f64,
    /// Language-model order.
    pub lm_order: NGramOrder,
    /// Number of training sentences sampled for the language model.
    pub lm_training_sentences: usize,
}

impl TaskConfig {
    /// A tiny task for unit tests and quick examples (runs in milliseconds).
    pub fn tiny() -> Self {
        TaskConfig {
            vocabulary_size: 12,
            num_phones: 10,
            feature_dim: 8,
            components_per_senone: 1,
            topology: HmmTopology::Three,
            word_length_range: (2, 4),
            mean_separation: 6.0,
            self_loop_prob: 0.55,
            lm_order: NGramOrder::Bigram,
            lm_training_sentences: 200,
        }
    }

    /// A small-but-real task used by the WER experiments
    /// (tens of words, a few hundred senones' worth of structure).
    pub fn small() -> Self {
        TaskConfig {
            vocabulary_size: 60,
            num_phones: 20,
            feature_dim: 13,
            components_per_senone: 2,
            topology: HmmTopology::Three,
            word_length_range: (2, 6),
            mean_separation: 4.0,
            self_loop_prob: 0.6,
            lm_order: NGramOrder::Bigram,
            lm_training_sentences: 500,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CorpusError::InvalidConfig`] for zero-sized dimensions or an
    /// empty word-length range.
    pub fn validate(&self) -> Result<(), CorpusError> {
        if self.vocabulary_size == 0
            || self.num_phones < 2
            || self.feature_dim == 0
            || self.components_per_senone == 0
        {
            return Err(CorpusError::InvalidConfig(
                "vocabulary, phones, feature dim and components must be positive".into(),
            ));
        }
        if self.num_phones > 51 {
            return Err(CorpusError::InvalidConfig(
                "at most 51 phones (the English inventory) are supported".into(),
            ));
        }
        if self.word_length_range.0 == 0 || self.word_length_range.0 > self.word_length_range.1 {
            return Err(CorpusError::InvalidConfig(
                "word_length_range must be a non-empty range starting at 1 or more".into(),
            ));
        }
        if !(self.self_loop_prob > 0.0 && self.self_loop_prob < 1.0) {
            return Err(CorpusError::InvalidConfig(
                "self_loop_prob must be in (0, 1)".into(),
            ));
        }
        if self.mean_separation <= 0.0 {
            return Err(CorpusError::InvalidConfig(
                "mean_separation must be positive".into(),
            ));
        }
        Ok(())
    }

    /// Number of senones this task's acoustic model will have
    /// (context-independent tying: one senone per phone state).
    pub fn num_senones(&self) -> usize {
        self.num_phones * self.topology.num_states()
    }
}

impl Default for TaskConfig {
    fn default() -> Self {
        Self::small()
    }
}

/// A generated task: every knowledge source the recogniser needs, plus the
/// synthesiser that produces test utterances from it.
#[derive(Debug, Clone)]
pub struct SyntheticTask {
    /// The acoustic model.
    pub acoustic_model: AcousticModel,
    /// The pronunciation dictionary.
    pub dictionary: Dictionary,
    /// The language model.
    pub language_model: NGramModel,
    /// The phone set used.
    pub phone_set: PhoneSet,
    /// The configuration the task was generated from.
    pub config: TaskConfig,
    /// Seed used, so utterance synthesis is reproducible.
    pub seed: u64,
}

impl SyntheticTask {
    /// Synthesises one utterance of `num_words` words with the given feature
    /// noise level (standard deviations of perturbation); returns the feature
    /// frames and the reference word sequence.
    pub fn synthesize_utterance(
        &self,
        num_words: usize,
        noise_std: f32,
        utterance_seed: u64,
    ) -> (Vec<Vec<f32>>, Vec<WordId>) {
        let synth = UtteranceSynthesizer::new(self, noise_std);
        synth.synthesize(
            num_words,
            self.seed ^ utterance_seed.wrapping_mul(0x9E37_79B9),
        )
    }

    /// Synthesises a whole test set of utterances.
    pub fn synthesize_test_set(
        &self,
        num_utterances: usize,
        words_per_utterance: usize,
        noise_std: f32,
    ) -> Vec<(Vec<Vec<f32>>, Vec<WordId>)> {
        (0..num_utterances)
            .map(|i| self.synthesize_utterance(words_per_utterance, noise_std, i as u64 + 1))
            .collect()
    }
}

/// Deterministic generator of synthetic tasks.
#[derive(Debug, Clone)]
pub struct TaskGenerator {
    seed: u64,
}

impl TaskGenerator {
    /// Creates a generator with a seed (same seed → identical task).
    pub fn new(seed: u64) -> Self {
        TaskGenerator { seed }
    }

    /// Generates a task.
    ///
    /// # Errors
    ///
    /// Returns [`CorpusError::InvalidConfig`] for invalid configurations and
    /// [`CorpusError::Generation`] if an internal artefact fails validation.
    pub fn generate(&self, config: &TaskConfig) -> Result<SyntheticTask, CorpusError> {
        config.validate()?;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let phone_set = PhoneSet::english_51();
        let states = config.topology.num_states();

        // --- acoustic model: one senone per (phone, state) with separated means ---
        let num_senones = config.num_senones();
        let mixtures: Vec<GaussianMixture> = (0..num_senones)
            .map(|_senone| {
                // Anchor each senone at a distinct random direction scaled by
                // the separation, then scatter components around it.
                let anchor: Vec<f32> = (0..config.feature_dim)
                    .map(|_| (rng.gen::<f32>() - 0.5) * 2.0 * config.mean_separation)
                    .collect();
                let comps: Vec<(f32, DiagGaussian)> = (0..config.components_per_senone)
                    .map(|_| {
                        let mean: Vec<f32> = anchor
                            .iter()
                            .map(|&a| a + (rng.gen::<f32>() - 0.5) * 0.5)
                            .collect();
                        let var: Vec<f32> = (0..config.feature_dim)
                            .map(|_| 0.5 + rng.gen::<f32>())
                            .collect();
                        (
                            0.5 + rng.gen::<f32>(),
                            DiagGaussian::new(mean, var).expect("generated gaussian is valid"),
                        )
                    })
                    .collect();
                GaussianMixture::new(comps).expect("generated mixture is valid")
            })
            .collect();
        let pool = SenonePool::new(mixtures)?;

        let mut inventory = TriphoneInventory::new(config.topology);
        for p in 0..config.num_phones {
            let senones: Vec<SenoneId> = (0..states)
                .map(|k| SenoneId((p * states + k) as u32))
                .collect();
            inventory.add(Triphone::context_independent(PhoneId(p as u16)), senones)?;
        }
        let transitions = TransitionMatrix::bakis(config.topology, config.self_loop_prob)?;
        let am_config = AcousticModelConfig {
            num_senones,
            num_components: config.components_per_senone,
            feature_dim: config.feature_dim,
            topology: config.topology,
            num_phones: config.num_phones,
            self_loop_prob: config.self_loop_prob,
        };
        let acoustic_model = AcousticModel::new(am_config, pool, inventory, transitions)?;

        // --- dictionary: unique pronunciations over non-silence phones ---
        let mut dictionary = Dictionary::new();
        let mut used: std::collections::HashSet<Vec<u16>> = std::collections::HashSet::new();
        let mut word_index = 0usize;
        while dictionary.len() < config.vocabulary_size {
            let len = rng.gen_range(config.word_length_range.0..=config.word_length_range.1);
            let phones: Vec<u16> = (0..len)
                .map(|_| rng.gen_range(1..config.num_phones) as u16)
                .collect();
            if !used.insert(phones.clone()) {
                continue;
            }
            let spelling = format!("w{word_index:04}");
            word_index += 1;
            dictionary.add_word(
                &spelling,
                Pronunciation::new(phones.into_iter().map(PhoneId).collect()),
            )?;
        }

        // --- language model: train on sentences from a hidden Markov word chain ---
        let vocab = dictionary.len();
        let mut sentences = Vec::with_capacity(config.lm_training_sentences);
        for _ in 0..config.lm_training_sentences {
            let len = rng.gen_range(3..=8);
            let mut sentence = Vec::with_capacity(len);
            let mut current = rng.gen_range(0..vocab);
            for _ in 0..len {
                sentence.push(WordId(current as u32));
                // A sticky chain: with high probability move to a "neighbour"
                // word, giving the LM something better than uniform to learn.
                current = if rng.gen::<f32>() < 0.7 {
                    (current + rng.gen_range(1..4usize)) % vocab
                } else {
                    rng.gen_range(0..vocab)
                };
            }
            sentences.push(sentence);
        }
        let language_model = NGramModel::train(config.lm_order, vocab, &sentences)?;

        Ok(SyntheticTask {
            acoustic_model,
            dictionary,
            language_model,
            phone_set,
            config: config.clone(),
            seed: self.seed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation() {
        assert!(TaskConfig::tiny().validate().is_ok());
        assert!(TaskConfig::small().validate().is_ok());
        assert!(TaskConfig::default().validate().is_ok());
        let mut c = TaskConfig::tiny();
        c.vocabulary_size = 0;
        assert!(c.validate().is_err());
        let mut c = TaskConfig::tiny();
        c.num_phones = 1;
        assert!(c.validate().is_err());
        let mut c = TaskConfig::tiny();
        c.num_phones = 60;
        assert!(c.validate().is_err());
        let mut c = TaskConfig::tiny();
        c.word_length_range = (3, 2);
        assert!(c.validate().is_err());
        let mut c = TaskConfig::tiny();
        c.self_loop_prob = 1.5;
        assert!(c.validate().is_err());
        let mut c = TaskConfig::tiny();
        c.mean_separation = 0.0;
        assert!(c.validate().is_err());
        assert_eq!(TaskConfig::tiny().num_senones(), 30);
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = TaskConfig::tiny();
        let a = TaskGenerator::new(7).generate(&cfg).unwrap();
        let b = TaskGenerator::new(7).generate(&cfg).unwrap();
        assert_eq!(a.dictionary.len(), b.dictionary.len());
        for (wa, wb) in a.dictionary.iter().zip(b.dictionary.iter()) {
            assert_eq!(wa.1, wb.1);
            assert_eq!(wa.2.phones(), wb.2.phones());
        }
        // Different seeds give different dictionaries.
        let c = TaskGenerator::new(8).generate(&cfg).unwrap();
        let same = a
            .dictionary
            .iter()
            .zip(c.dictionary.iter())
            .all(|(x, y)| x.2.phones() == y.2.phones());
        assert!(!same);
    }

    #[test]
    fn generated_task_is_consistent() {
        let cfg = TaskConfig::tiny();
        let task = TaskGenerator::new(1).generate(&cfg).unwrap();
        assert_eq!(task.dictionary.len(), cfg.vocabulary_size);
        assert_eq!(task.acoustic_model.senones().len(), cfg.num_senones());
        assert_eq!(task.acoustic_model.feature_dim(), cfg.feature_dim);
        assert_eq!(task.language_model.vocab_size(), cfg.vocabulary_size);
        assert_eq!(task.phone_set.len(), 51);
        // Every dictionary phone has an acoustic model.
        for (_, _, pron) in task.dictionary.iter() {
            for &p in pron.phones() {
                assert!(p.index() < cfg.num_phones);
                assert!(task
                    .acoustic_model
                    .triphones()
                    .resolve(&Triphone::context_independent(p))
                    .is_some());
            }
            assert!(pron.len() >= cfg.word_length_range.0);
            assert!(pron.len() <= cfg.word_length_range.1);
        }
    }

    #[test]
    fn senones_are_well_separated() {
        let task = TaskGenerator::new(3).generate(&TaskConfig::tiny()).unwrap();
        let model = &task.acoustic_model;
        // A vector drawn at senone k's first-component mean scores senone k
        // best for most senones (allowing a few collisions from randomness).
        let mut correct = 0;
        let n = model.senones().len();
        for k in 0..n {
            let mean = model
                .senones()
                .get(SenoneId(k as u32))
                .unwrap()
                .mixture()
                .components()[0]
                .mean()
                .to_vec();
            let scores = model.score_all_senones(&mean);
            let best = scores
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .unwrap()
                .0;
            if best == k {
                correct += 1;
            }
        }
        assert!(correct as f64 / n as f64 > 0.8, "{correct}/{n}");
    }

    #[test]
    fn utterance_synthesis_has_reasonable_length() {
        let task = TaskGenerator::new(5).generate(&TaskConfig::tiny()).unwrap();
        let (features, words) = task.synthesize_utterance(4, 0.1, 99);
        assert_eq!(words.len(), 4);
        assert!(!features.is_empty());
        assert!(features.iter().all(|f| f.len() == task.config.feature_dim));
        // Same seed → same utterance.
        let (f2, w2) = task.synthesize_utterance(4, 0.1, 99);
        assert_eq!(words, w2);
        assert_eq!(features, f2);
        // Different utterance seed → different word sequence (almost surely).
        let (_, w3) = task.synthesize_utterance(4, 0.1, 100);
        assert_ne!(words, w3);
        let set = task.synthesize_test_set(3, 2, 0.0);
        assert_eq!(set.len(), 3);
        assert!(set.iter().all(|(_, w)| w.len() == 2));
    }
}
