//! Adversarial streaming scenarios: labelled audio streams that stress the
//! endpointer the way deployed conditions do.
//!
//! The WSN comparative study this repo's PAPERS.md cites shows exactly what
//! breaks fixed-threshold endpointing in the field — non-stationary noise
//! floors, gain variation across microphone distances, clipped radio links.
//! [`ScenarioGenerator`] reproduces each of those conditions as a
//! deterministic waveform built on [`AudioSynthesizer`], and — because the
//! generator *constructs* the stream — every [`Scenario`] carries exact
//! ground truth: where each speech span starts and ends in samples, and what
//! was said.  The workspace's `tests/scenarios.rs` drives every scenario
//! through the full streaming stack and asserts boundaries, offline parity
//! and frame accounting against these labels.
//!
//! The speech content comes from [`ScenarioVoiceTask`]: a small command
//! vocabulary whose acoustic models are *trained from rendered audio* (the
//! same k-means/EM recipe as the `voice_command` example), so scenario
//! transcripts are meaningful end-to-end — raw samples to word ids — rather
//! than features sampled from the model being scored.

use crate::{AudioSynthesizer, CorpusError};
use asr_acoustic::{
    AcousticModel, AcousticModelConfig, GaussianMixture, GmmTrainer, HmmTopology, PhoneId,
    SenoneId, SenonePool, TrainerConfig, TransitionMatrix, Triphone, TriphoneInventory,
};
use asr_frontend::{Frontend, FrontendConfig};
use asr_lexicon::{Dictionary, NGramModel, Pronunciation, WordId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The scenario command vocabulary: (spelling, phone sequence).  Small enough
/// to train in a test, distinct enough in formant space to decode reliably.
const SCENARIO_WORDS: &[(&str, &[u16])] = &[
    ("open", &[1, 2, 3]),
    ("close", &[4, 5]),
    ("lights", &[6, 7, 8]),
    ("music", &[9, 10, 11]),
    ("warmer", &[12, 13]),
    ("cooler", &[14, 15, 16]),
];

/// A recognition task whose acoustic models were trained from rendered
/// audio, so scenario streams decode to meaningful transcripts.
///
/// Training renders each phone several times with [`AudioSynthesizer`],
/// extracts MFCCs with [`ScenarioVoiceTask::frontend_config`], splits each
/// rendering into thirds (one per HMM state) and fits a 2-component mixture
/// per state — the `voice_command` example's recipe, packaged for reuse.
#[derive(Debug, Clone)]
pub struct ScenarioVoiceTask {
    /// Audio-trained acoustic model (3-state Bakis phones, 2-component
    /// mixtures, 13-dim static MFCCs).
    pub acoustic_model: AcousticModel,
    /// The command dictionary ([`SCENARIO_WORDS`](self)).
    pub dictionary: Dictionary,
    /// Uniform language model over the commands.
    pub language_model: NGramModel,
}

impl ScenarioVoiceTask {
    /// The frontend geometry the task was trained with — 13 static cepstra,
    /// no deltas, no CMN (phone models are trained on isolated renderings
    /// whose utterance mean differs from a full command's), no dither (bit
    /// reproducibility).  Streaming this exact configuration is what makes
    /// scenario decodes match the trained models.
    pub fn frontend_config() -> FrontendConfig {
        FrontendConfig {
            use_delta: false,
            use_delta_delta: false,
            cepstral_mean_norm: false,
            dither: 0.0,
            ..FrontendConfig::default()
        }
    }

    /// Trains the task from rendered audio, deterministically in `seed`.
    ///
    /// # Errors
    ///
    /// Propagates acoustic-model and lexicon construction failures as
    /// [`CorpusError::Generation`].
    pub fn train(seed: u64) -> Result<Self, CorpusError> {
        let synth = AudioSynthesizer::default_16khz();
        let fe = Frontend::new(Self::frontend_config())
            .map_err(|e| CorpusError::Generation(e.to_string()))?;
        let dim = fe.config().feature_dim();
        let mut phones: Vec<u16> = SCENARIO_WORDS
            .iter()
            .flat_map(|(_, ph)| ph.iter().copied())
            .collect();
        phones.sort_unstable();
        phones.dedup();
        let num_phones = 1 + *phones.last().expect("vocabulary is non-empty") as usize;

        let trainer = GmmTrainer::new(TrainerConfig {
            num_components: 2,
            kmeans_iterations: 6,
            em_iterations: 3,
            ..TrainerConfig::default()
        });
        let states = 3usize;
        let mut mixtures: Vec<GaussianMixture> = Vec::new();
        let mut inventory = TriphoneInventory::new(HmmTopology::Three);
        for &phone in &phones {
            // Several renderings per phone; each rendering's frames split
            // into three equal thirds, one per HMM state.
            let mut per_state: Vec<Vec<Vec<f32>>> = vec![Vec::new(); states];
            for take in 0..6u64 {
                let audio = synth.render_phones(&[PhoneId(phone)], seed + take * 31 + phone as u64);
                let frames = fe.process(&audio);
                let third = frames.len() / states;
                for (i, f) in frames.into_iter().enumerate() {
                    let state = (i / third.max(1)).min(states - 1);
                    per_state[state].push(f);
                }
            }
            let senone_base = mixtures.len() as u32;
            for state_frames in per_state {
                mixtures.push(trainer.fit(&state_frames)?);
            }
            inventory.add(
                Triphone::context_independent(PhoneId(phone)),
                (0..states as u32)
                    .map(|k| SenoneId(senone_base + k))
                    .collect(),
            )?;
        }
        let num_senones = mixtures.len();
        let acoustic_model = AcousticModel::new(
            AcousticModelConfig {
                num_senones,
                num_components: 2,
                feature_dim: dim,
                topology: HmmTopology::Three,
                num_phones,
                self_loop_prob: 0.7,
            },
            SenonePool::new(mixtures)?,
            inventory,
            TransitionMatrix::bakis(HmmTopology::Three, 0.7)?,
        )?;

        let mut dictionary = Dictionary::new();
        for (spelling, phones) in SCENARIO_WORDS {
            dictionary.add_word(
                spelling,
                Pronunciation::new(phones.iter().map(|&p| PhoneId(p)).collect()),
            )?;
        }
        let language_model = NGramModel::uniform(dictionary.len())?;
        Ok(ScenarioVoiceTask {
            acoustic_model,
            dictionary,
            language_model,
        })
    }
}

/// The adversarial conditions a scenario reproduces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScenarioKind {
    /// The noise floor rises steadily under the whole stream (and keeps
    /// rising through a pure-noise tail after the last utterance): a fixed
    /// threshold under the final floor *floods* — everything classifies as
    /// speech — while an adaptive floor must ride the ramp and stay quiet.
    NoiseRampUp,
    /// The noise floor starts high and falls; a late utterance is rendered
    /// quiet (far-talker) so only a threshold that followed the floor *down*
    /// still catches it.
    NoiseRampDown,
    /// Utterances hard-clipped at a fraction of full scale, as a saturated
    /// ADC or radio link produces.
    Clipped,
    /// Far-field capture: speech attenuated to a fraction of its close-talk
    /// level over a faint noise bed.
    FarField,
    /// Two utterances separated by a sub-hangover gap (they must merge into
    /// one endpointed utterance) followed, after a real pause, by a third.
    BackToBack,
    /// A long session of many utterances with ordinary pauses — endurance
    /// for per-utterance state resets (CMN priors, VAD re-arm, decoder
    /// recycling).
    LongSession,
}

impl ScenarioKind {
    /// Every scenario kind, in a fixed order.
    pub const ALL: [ScenarioKind; 6] = [
        ScenarioKind::NoiseRampUp,
        ScenarioKind::NoiseRampDown,
        ScenarioKind::Clipped,
        ScenarioKind::FarField,
        ScenarioKind::BackToBack,
        ScenarioKind::LongSession,
    ];

    /// A stable snake_case name (used in test output and bench ids).
    pub fn name(&self) -> &'static str {
        match self {
            ScenarioKind::NoiseRampUp => "noise_ramp_up",
            ScenarioKind::NoiseRampDown => "noise_ramp_down",
            ScenarioKind::Clipped => "clipped",
            ScenarioKind::FarField => "far_field",
            ScenarioKind::BackToBack => "back_to_back",
            ScenarioKind::LongSession => "long_session",
        }
    }
}

/// One ground-truth speech span: what was said, and exactly where.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeechSpan {
    /// The word ids spoken in this span, in order.
    pub words: Vec<WordId>,
    /// Their spellings.
    pub text: Vec<String>,
    /// First sample of rendered speech (inclusive).
    pub onset_sample: usize,
    /// One past the last sample of rendered speech (the synthesiser's
    /// trailing inter-word gap is *excluded*).
    pub end_sample: usize,
}

/// A labelled adversarial stream: the waveform plus its ground truth.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Which adversarial condition this stream reproduces.
    pub kind: ScenarioKind,
    /// Sample rate of `samples` in Hz.
    pub sample_rate_hz: u32,
    /// The waveform, in `[-1, 1]`.
    pub samples: Vec<f32>,
    /// Ground-truth speech spans, in stream order, non-overlapping.
    pub spans: Vec<SpeechSpan>,
    /// How far (in seconds) a detected boundary may reasonably sit from the
    /// labelled one for this condition — generous for ramps and far-field
    /// (the tracker needs hops to adapt), tight for clean streams.
    pub boundary_slack_s: f32,
}

impl Scenario {
    /// Stream duration in seconds.
    pub fn duration_s(&self) -> f32 {
        self.samples.len() as f32 / self.sample_rate_hz as f32
    }

    /// The utterances an endpointer bridging gaps up to `merge_gap_samples`
    /// should produce: ground-truth spans whose silence gap is within the
    /// endpointer's hangover merge into one expected utterance.  This makes
    /// the expectation a function of the *detector* configuration, so one
    /// scenario serves any hangover setting.
    pub fn expected_utterances(&self, merge_gap_samples: usize) -> Vec<SpeechSpan> {
        let mut merged: Vec<SpeechSpan> = Vec::new();
        for span in &self.spans {
            match merged.last_mut() {
                Some(last)
                    if span.onset_sample.saturating_sub(last.end_sample) <= merge_gap_samples =>
                {
                    last.words.extend(span.words.iter().copied());
                    last.text.extend(span.text.iter().cloned());
                    last.end_sample = span.end_sample;
                }
                _ => merged.push(span.clone()),
            }
        }
        merged
    }
}

/// Builds labelled adversarial streams over a command dictionary.
///
/// Deterministic: the same dictionary, seed and kind always produce the
/// identical waveform and labels (the shimmed [`StdRng`] is a fixed
/// algorithm, and speech is rendered noiselessly — each kind then layers its
/// own seeded noise/degradation on top).
#[derive(Debug)]
pub struct ScenarioGenerator<'d> {
    dictionary: &'d Dictionary,
    synth: AudioSynthesizer,
    seed: u64,
}

/// Accumulates a stream and its span labels while a scenario is assembled.
struct StreamBuilder<'d> {
    dictionary: &'d Dictionary,
    synth: AudioSynthesizer,
    sample_rate: u32,
    samples: Vec<f32>,
    spans: Vec<SpeechSpan>,
}

impl StreamBuilder<'_> {
    fn silence(&mut self, seconds: f32) {
        let n = (self.sample_rate as f32 * seconds) as usize;
        self.samples.extend(std::iter::repeat(0.0f32).take(n));
    }

    /// Renders `words` at `gain` and records the ground-truth span.  The
    /// synthesiser appends a 30 ms gap after every word; the trailing one is
    /// kept in the waveform (it is genuine silence) but excluded from the
    /// span's `end_sample`.
    fn utterance(&mut self, words: &[WordId], seed: u64, gain: f32) {
        let audio = self.synth.render_words(self.dictionary, words, seed);
        let trailing_gap = (self.sample_rate as f32 * 0.03) as usize;
        let onset_sample = self.samples.len();
        let end_sample = onset_sample + audio.len().saturating_sub(trailing_gap);
        self.samples.extend(audio.iter().map(|s| s * gain));
        self.spans.push(SpeechSpan {
            words: words.to_vec(),
            text: words
                .iter()
                .map(|&w| self.dictionary.spelling(w).unwrap_or("<unk>").to_string())
                .collect(),
            onset_sample,
            end_sample,
        });
    }

    fn into_scenario(self, kind: ScenarioKind, boundary_slack_s: f32) -> Scenario {
        Scenario {
            kind,
            sample_rate_hz: self.sample_rate,
            samples: self.samples,
            spans: self.spans,
            boundary_slack_s,
        }
    }
}

impl<'d> ScenarioGenerator<'d> {
    /// Creates a generator over a dictionary (typically
    /// [`ScenarioVoiceTask::dictionary`]).  Speech is rendered noiselessly;
    /// each scenario layers its own degradation.
    pub fn new(dictionary: &'d Dictionary, seed: u64) -> Self {
        ScenarioGenerator {
            dictionary,
            synth: AudioSynthesizer::new(16_000, 0.12, 0.0),
            seed,
        }
    }

    /// The generator's sample rate (16 kHz).
    pub fn sample_rate_hz(&self) -> u32 {
        self.synth.sample_rate_hz()
    }

    /// Generates every scenario kind, in [`ScenarioKind::ALL`] order.
    pub fn all(&self) -> Vec<Scenario> {
        ScenarioKind::ALL
            .iter()
            .map(|&kind| self.generate(kind))
            .collect()
    }

    /// Generates one labelled stream.  Deterministic in
    /// `(dictionary, seed, kind)`.
    pub fn generate(&self, kind: ScenarioKind) -> Scenario {
        let kind_index = ScenarioKind::ALL
            .iter()
            .position(|&k| k == kind)
            .expect("ALL contains every kind") as u64;
        let mut rng =
            StdRng::seed_from_u64(self.seed.wrapping_mul(6364136223846793005) + kind_index);
        let mut builder = StreamBuilder {
            dictionary: self.dictionary,
            synth: self.synth.clone(),
            sample_rate: self.synth.sample_rate_hz(),
            samples: Vec::new(),
            spans: Vec::new(),
        };
        match kind {
            ScenarioKind::NoiseRampUp => {
                builder.silence(0.5);
                let words = self.pick_words(&mut rng, 1);
                builder.utterance(&words, rng.gen(), 1.0);
                // A long gap, so the floor window refills between the
                // utterances (it cannot observe noise masked by speech).
                builder.silence(0.8);
                let words = self.pick_words(&mut rng, 2);
                builder.utterance(&words, rng.gen(), 1.0);
                // A pure-noise tail: the ramp keeps rising after the last
                // utterance, so a flooding detector would hallucinate speech
                // here — the labels say there is none.
                builder.silence(1.5);
                let noise_seed = rng.gen();
                let mut scenario = builder.into_scenario(kind, 0.3);
                // Uniform noise whose amplitude ramps 0.002 → 0.02 across
                // the stream: an order of magnitude in ~3 s, a per-window
                // ratio the adaptive margin absorbs (the ramp is geometric,
                // so that ratio is uniform over the whole stream).
                add_noise_ramp(&mut scenario.samples, 0.002, 0.02, noise_seed);
                scenario
            }
            ScenarioKind::NoiseRampDown => {
                builder.silence(0.5);
                let words = self.pick_words(&mut rng, 2);
                builder.utterance(&words, rng.gen(), 1.0);
                // A long falling stretch, so the floor estimate has time to
                // come down before the quiet talker speaks.
                builder.silence(1.5);
                let words = self.pick_words(&mut rng, 1);
                builder.utterance(&words, rng.gen(), 0.1);
                builder.silence(0.5);
                let noise_seed = rng.gen();
                let mut scenario = builder.into_scenario(kind, 0.3);
                add_noise_ramp(&mut scenario.samples, 0.03, 0.002, noise_seed);
                scenario
            }
            ScenarioKind::Clipped => {
                builder.silence(0.4);
                let words = self.pick_words(&mut rng, 1);
                builder.utterance(&words, rng.gen(), 2.2);
                builder.silence(0.5);
                let words = self.pick_words(&mut rng, 2);
                builder.utterance(&words, rng.gen(), 2.2);
                builder.silence(0.4);
                let mut scenario = builder.into_scenario(kind, 0.15);
                // Hard saturation at 30 % of full scale.
                for s in &mut scenario.samples {
                    *s = s.clamp(-0.3, 0.3);
                }
                scenario
            }
            ScenarioKind::FarField => {
                builder.silence(0.5);
                let words = self.pick_words(&mut rng, 1);
                builder.utterance(&words, rng.gen(), 0.12);
                builder.silence(0.4);
                let words = self.pick_words(&mut rng, 2);
                builder.utterance(&words, rng.gen(), 0.12);
                builder.silence(0.4);
                let noise_seed = rng.gen();
                let mut scenario = builder.into_scenario(kind, 0.3);
                add_noise_ramp(&mut scenario.samples, 0.001, 0.001, noise_seed);
                scenario
            }
            ScenarioKind::BackToBack => {
                builder.silence(0.4);
                let first = self.pick_words(&mut rng, 1);
                builder.utterance(&first, rng.gen(), 1.0);
                // 10 ms of extra silence + the synthesiser's own 30 ms
                // trailing gap: a 40 ms pause, well inside any reasonable
                // hangover, so the next utterance must merge with this one.
                builder.silence(0.01);
                let second = self.pick_words(&mut rng, 1);
                builder.utterance(&second, rng.gen(), 1.0);
                // A full second: a genuine boundary.
                builder.silence(1.0);
                let third = self.pick_words(&mut rng, 1);
                builder.utterance(&third, rng.gen(), 1.0);
                builder.silence(0.4);
                builder.into_scenario(kind, 0.15)
            }
            ScenarioKind::LongSession => {
                builder.silence(0.4);
                for _ in 0..6 {
                    let words = self.pick_words(&mut rng, 1);
                    builder.utterance(&words, rng.gen(), 1.0);
                    builder.silence(0.4);
                }
                let noise_seed = rng.gen();
                let mut scenario = builder.into_scenario(kind, 0.15);
                // The training synthesiser's own noise bed (amplitude 0.01),
                // so long-session speech is acoustically matched and its
                // transcripts are checkable, not just its boundaries.
                add_noise_ramp(&mut scenario.samples, 0.01, 0.01, noise_seed);
                scenario
            }
        }
    }

    fn pick_words(&self, rng: &mut StdRng, count: usize) -> Vec<WordId> {
        (0..count)
            .map(|_| WordId(rng.gen_range(0..self.dictionary.len() as u32)))
            .collect()
    }
}

/// Adds uniform noise whose amplitude ramps from `from` to `to` across the
/// buffer (equal endpoints → a stationary noise bed).  The ramp is
/// *geometric* — a constant amplitude ratio per second, as a fan spinning up
/// or a receding source produces — so its relative slope is uniform: a
/// linear ramp from a near-silent floor quadruples within the first second,
/// which no bounded-margin tracker could ride without flooding.
fn add_noise_ramp(samples: &mut [f32], from: f32, to: f32, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = samples.len().max(1) as f32;
    let geometric = from > 0.0 && to > 0.0;
    for (i, s) in samples.iter_mut().enumerate() {
        let t = i as f32 / n;
        let amplitude = if geometric {
            from * (to / from).powf(t)
        } else {
            from + (to - from) * t
        };
        *s += (rng.gen::<f32>() - 0.5) * 2.0 * amplitude;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task() -> ScenarioVoiceTask {
        ScenarioVoiceTask::train(11).unwrap()
    }

    #[test]
    fn generation_is_deterministic_and_labelled() {
        let task = task();
        let g = ScenarioGenerator::new(&task.dictionary, 7);
        for kind in ScenarioKind::ALL {
            let a = g.generate(kind);
            let b = g.generate(kind);
            assert_eq!(a.samples, b.samples, "{}", kind.name());
            assert_eq!(a.spans, b.spans, "{}", kind.name());
            assert_eq!(a.kind, kind);
            assert!(!a.spans.is_empty());
            assert!(a.duration_s() > 1.0);
            assert!(a.boundary_slack_s > 0.0);
            // Labels are ordered, non-overlapping, inside the stream, and
            // every span names real words.
            let mut previous_end = 0usize;
            for span in &a.spans {
                assert!(span.onset_sample >= previous_end, "{}", kind.name());
                assert!(span.onset_sample < span.end_sample);
                assert!(span.end_sample <= a.samples.len());
                assert_eq!(span.words.len(), span.text.len());
                for (w, t) in span.words.iter().zip(&span.text) {
                    assert_eq!(task.dictionary.spelling(*w), Some(t.as_str()));
                }
                previous_end = span.end_sample;
            }
            // All samples in range (clipping bounds the worst case).
            assert!(a.samples.iter().all(|s| s.is_finite() && s.abs() <= 1.1));
        }
        // Different seeds change the content.
        let other = ScenarioGenerator::new(&task.dictionary, 8);
        assert_ne!(
            g.generate(ScenarioKind::LongSession).samples,
            other.generate(ScenarioKind::LongSession).samples
        );
    }

    #[test]
    fn back_to_back_merges_under_the_gap_and_splits_over_it() {
        let task = task();
        let g = ScenarioGenerator::new(&task.dictionary, 3);
        let scenario = g.generate(ScenarioKind::BackToBack);
        assert_eq!(scenario.spans.len(), 3);
        // A 50 ms hangover bridges the 40 ms pause but not the 1 s one.
        let merged = scenario.expected_utterances(800);
        assert_eq!(merged.len(), 2);
        assert_eq!(
            merged[0].words.len(),
            scenario.spans[0].words.len() + scenario.spans[1].words.len()
        );
        assert_eq!(merged[0].onset_sample, scenario.spans[0].onset_sample);
        assert_eq!(merged[0].end_sample, scenario.spans[1].end_sample);
        assert_eq!(merged[1], scenario.spans[2]);
        // A zero-gap endpointer merges nothing; a huge one merges all.
        assert_eq!(scenario.expected_utterances(0).len(), 3);
        assert_eq!(scenario.expected_utterances(usize::MAX).len(), 1);
    }

    #[test]
    fn clipping_saturates_and_far_field_attenuates() {
        let task = task();
        let g = ScenarioGenerator::new(&task.dictionary, 5);
        let clipped = g.generate(ScenarioKind::Clipped);
        let peak = clipped.samples.iter().fold(0.0f32, |m, s| m.max(s.abs()));
        assert!(peak <= 0.3 + 1e-6);
        // A meaningful share of speech samples sit *at* the rails.
        let span = &clipped.spans[0];
        let at_rail = clipped.samples[span.onset_sample..span.end_sample]
            .iter()
            .filter(|s| (s.abs() - 0.3).abs() < 1e-6)
            .count();
        assert!(
            at_rail > (span.end_sample - span.onset_sample) / 10,
            "{at_rail} samples at the rail"
        );

        let far = g.generate(ScenarioKind::FarField);
        let span = &far.spans[0];
        let speech_peak = far.samples[span.onset_sample..span.end_sample]
            .iter()
            .fold(0.0f32, |m, s| m.max(s.abs()));
        assert!(speech_peak < 0.2, "{speech_peak}");
    }

    #[test]
    fn voice_task_trains_consistent_artefacts() {
        let task = task();
        assert_eq!(task.dictionary.len(), SCENARIO_WORDS.len());
        assert_eq!(
            task.acoustic_model.feature_dim(),
            ScenarioVoiceTask::frontend_config().feature_dim()
        );
        // Training is deterministic in the seed.
        let again = ScenarioVoiceTask::train(11).unwrap();
        assert_eq!(
            task.dictionary.id_of("lights"),
            again.dictionary.id_of("lights")
        );
        // Decoding quality against the trained models is asserted end-to-end
        // in the workspace's `tests/scenarios.rs` (asr-corpus cannot depend
        // on asr-core).
    }
}
