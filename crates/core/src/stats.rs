//! Per-frame and per-utterance decoding statistics.
//!
//! These counters back experiments E4 (active-senone fraction with and
//! without word-decode feedback), E5 (real-time capacity) and E7 (fast-GMM
//! ablations).

/// Statistics of one decoded frame.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FrameStats {
    /// Frame index within the utterance.
    pub frame: usize,
    /// Senones whose scores were actually computed this frame.
    pub senones_scored: usize,
    /// Senones in the full inventory (for the active fraction).
    pub senone_inventory: usize,
    /// Active HMM (triphone) instances advanced this frame.
    pub active_hmms: usize,
    /// HMM instances pruned by the beam this frame.
    pub pruned_hmms: usize,
    /// Word-end candidates recorded this frame.
    pub word_ends: usize,
    /// Whether the full senone evaluation was skipped by Conditional Down
    /// Sampling (scores reused from the previous frame).
    pub cds_skipped: bool,
}

impl FrameStats {
    /// Fraction of the senone inventory evaluated this frame, in `[0, 1]`.
    pub fn active_senone_fraction(&self) -> f64 {
        if self.senone_inventory == 0 {
            0.0
        } else {
            self.senones_scored as f64 / self.senone_inventory as f64
        }
    }
}

/// Aggregated statistics of one decoded utterance.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DecodeStats {
    /// Per-frame statistics.
    pub frames: Vec<FrameStats>,
}

impl DecodeStats {
    /// Creates an empty container.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one frame.
    pub fn push(&mut self, frame: FrameStats) {
        self.frames.push(frame);
    }

    /// Number of frames decoded.
    pub fn num_frames(&self) -> usize {
        self.frames.len()
    }

    /// Mean fraction of the senone inventory evaluated per frame —
    /// the paper claims this stays well below 50 % thanks to the word-decode
    /// feedback.
    pub fn mean_active_senone_fraction(&self) -> f64 {
        if self.frames.is_empty() {
            return 0.0;
        }
        self.frames
            .iter()
            .map(|f| f.active_senone_fraction())
            .sum::<f64>()
            / self.frames.len() as f64
    }

    /// Worst-case (largest) per-frame active senone fraction.
    pub fn peak_active_senone_fraction(&self) -> f64 {
        self.frames
            .iter()
            .map(|f| f.active_senone_fraction())
            .fold(0.0, f64::max)
    }

    /// Mean number of senones scored per frame.
    pub fn mean_senones_scored(&self) -> f64 {
        if self.frames.is_empty() {
            return 0.0;
        }
        self.frames
            .iter()
            .map(|f| f.senones_scored as f64)
            .sum::<f64>()
            / self.frames.len() as f64
    }

    /// Mean number of active HMM instances per frame.
    pub fn mean_active_hmms(&self) -> f64 {
        if self.frames.is_empty() {
            return 0.0;
        }
        self.frames
            .iter()
            .map(|f| f.active_hmms as f64)
            .sum::<f64>()
            / self.frames.len() as f64
    }

    /// Total senone scores computed over the utterance.
    pub fn total_senones_scored(&self) -> u64 {
        self.frames.iter().map(|f| f.senones_scored as u64).sum()
    }

    /// Fraction of frames on which CDS skipped the full evaluation.
    pub fn cds_skip_fraction(&self) -> f64 {
        if self.frames.is_empty() {
            return 0.0;
        }
        self.frames.iter().filter(|f| f.cds_skipped).count() as f64 / self.frames.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(i: usize, scored: usize, inventory: usize, cds: bool) -> FrameStats {
        FrameStats {
            frame: i,
            senones_scored: scored,
            senone_inventory: inventory,
            active_hmms: scored / 3,
            pruned_hmms: 1,
            word_ends: if i % 5 == 0 { 1 } else { 0 },
            cds_skipped: cds,
        }
    }

    #[test]
    fn frame_fraction() {
        let f = frame(0, 1500, 6000, false);
        assert!((f.active_senone_fraction() - 0.25).abs() < 1e-12);
        let empty = FrameStats::default();
        assert_eq!(empty.active_senone_fraction(), 0.0);
    }

    #[test]
    fn aggregation() {
        let mut s = DecodeStats::new();
        s.push(frame(0, 1200, 6000, false));
        s.push(frame(1, 0, 6000, true));
        s.push(frame(2, 2400, 6000, false));
        assert_eq!(s.num_frames(), 3);
        assert!((s.mean_active_senone_fraction() - (0.2 + 0.0 + 0.4) / 3.0).abs() < 1e-12);
        assert!((s.peak_active_senone_fraction() - 0.4).abs() < 1e-12);
        assert!((s.mean_senones_scored() - 1200.0).abs() < 1e-9);
        assert_eq!(s.total_senones_scored(), 3600);
        assert!((s.cds_skip_fraction() - 1.0 / 3.0).abs() < 1e-12);
        assert!(s.mean_active_hmms() > 0.0);
    }

    #[test]
    fn empty_stats() {
        let s = DecodeStats::new();
        assert_eq!(s.num_frames(), 0);
        assert_eq!(s.mean_active_senone_fraction(), 0.0);
        assert_eq!(s.peak_active_senone_fraction(), 0.0);
        assert_eq!(s.mean_senones_scored(), 0.0);
        assert_eq!(s.mean_active_hmms(), 0.0);
        assert_eq!(s.cds_skip_fraction(), 0.0);
    }
}
