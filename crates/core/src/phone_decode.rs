//! The phone-decode stage: senone scoring and HMM stepping on a selectable
//! backend (cycle-accurate hardware model or software reference), plus the
//! four-layer fast-GMM machinery.

use crate::config::{GmmSelectionConfig, ScoringBackendKind};
use crate::DecodeError;
use asr_acoustic::{AcousticModel, SenoneId, TransitionMatrix};
use asr_float::LogProb;
use asr_hw::{SpeechSoc, UtteranceReport};
use std::collections::HashMap;

/// Result of advancing one HMM by one frame, independent of backend.
#[derive(Debug, Clone, PartialEq)]
pub struct HmmStepResult {
    /// New per-state path scores.
    pub scores: Vec<LogProb>,
    /// Best score of leaving the HMM this frame.
    pub exit_score: LogProb,
}

/// The senone-scoring / HMM-stepping backend.
#[derive(Debug)]
pub enum ScoringBackend {
    /// The paper's system: OP units + Viterbi units with cycle, bandwidth and
    /// power accounting.
    Hardware(Box<SpeechSoc>),
    /// Pure-software reference (same arithmetic, no hardware accounting).
    Software,
}

impl ScoringBackend {
    /// Builds a backend from its configuration.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::InvalidConfig`] if the SoC configuration is
    /// invalid.
    pub fn from_kind(kind: &ScoringBackendKind) -> Result<Self, DecodeError> {
        match kind {
            ScoringBackendKind::Hardware(cfg) => Ok(ScoringBackend::Hardware(Box::new(
                SpeechSoc::new(cfg.clone())
                    .map_err(|e| DecodeError::InvalidConfig(e.to_string()))?,
            ))),
            ScoringBackendKind::Software => Ok(ScoringBackend::Software),
        }
    }

    /// Returns `true` for the hardware backend.
    pub fn is_hardware(&self) -> bool {
        matches!(self, ScoringBackend::Hardware(_))
    }

    /// Access to the underlying SoC model (hardware backend only).
    pub fn soc(&self) -> Option<&SpeechSoc> {
        match self {
            ScoringBackend::Hardware(soc) => Some(soc),
            ScoringBackend::Software => None,
        }
    }
}

/// The phone-decode stage.
#[derive(Debug)]
pub struct PhoneDecoder {
    backend: ScoringBackend,
    selection: GmmSelectionConfig,
    /// Scores reused across frames by Conditional Down Sampling.
    cached_scores: HashMap<SenoneId, LogProb>,
    /// Feature vector of the last fully scored frame (the CDS condition
    /// compares against this, not against the previous frame, so drift over a
    /// run of skipped frames is bounded).
    last_scored_feature: Vec<f32>,
    /// Frames skipped since the last full scoring pass.
    skips_since_scored: usize,
}

impl PhoneDecoder {
    /// Creates the stage.
    pub fn new(backend: ScoringBackend, selection: GmmSelectionConfig) -> Self {
        PhoneDecoder {
            backend,
            selection,
            cached_scores: HashMap::new(),
            last_scored_feature: Vec::new(),
            skips_since_scored: 0,
        }
    }

    /// The backend (for inspecting hardware reports).
    pub fn backend(&self) -> &ScoringBackend {
        &self.backend
    }

    /// Starts a frame: loads the feature vector into the hardware.
    pub fn begin_frame(&mut self, feature: &[f32]) {
        if let ScoringBackend::Hardware(soc) = &mut self.backend {
            soc.begin_frame(feature);
        }
    }

    /// Scores the requested senones for the current frame, honouring the
    /// fast-GMM layers.  Returns the score map and whether the evaluation was
    /// skipped by Conditional Down Sampling.
    ///
    /// # Errors
    ///
    /// Propagates hardware errors as [`DecodeError::Hardware`].
    pub fn score_frame(
        &mut self,
        model: &AcousticModel,
        active: &[SenoneId],
        feature: &[f32],
    ) -> Result<(HashMap<SenoneId, LogProb>, bool), DecodeError> {
        let cds_skip = self.selection.cds_period > 1
            && !self.cached_scores.is_empty()
            && self.skips_since_scored + 1 < self.selection.cds_period
            && mean_squared_distance(feature, &self.last_scored_feature)
                <= self.selection.cds_threshold;
        if cds_skip {
            // Reuse the previous frame's scores; senones that were not cached
            // get a neutral (poor but finite) score so new words can still
            // start, at reduced fidelity — this is the accuracy/power
            // trade-off CDS makes.
            let floor = self
                .cached_scores
                .values()
                .fold(LogProb::zero(), |acc, &p| acc.max(p))
                + LogProb::new(-20.0);
            let map = active
                .iter()
                .map(|id| (*id, *self.cached_scores.get(id).unwrap_or(&floor)))
                .collect();
            self.skips_since_scored += 1;
            return Ok((map, true));
        }

        let scored: Vec<(SenoneId, LogProb)> = match &mut self.backend {
            ScoringBackend::Hardware(soc) => soc.score_senones(model, active)?,
            ScoringBackend::Software => active
                .iter()
                .map(|&id| {
                    let senone = model.senones().get(id).expect("active ids are valid");
                    let mix = senone.mixture();
                    let score = if self.selection.best_component_only {
                        mix.max_component_log_likelihood(&self.truncated(feature))
                    } else if self.selection.max_dims.is_some() {
                        mix.log_likelihood(&self.truncated(feature))
                    } else {
                        mix.log_likelihood(feature)
                    };
                    (id, score)
                })
                .collect(),
        };
        self.cached_scores = scored.iter().copied().collect();
        // CDS bookkeeping costs a per-frame feature copy; skip it entirely
        // when down-sampling is off.
        if self.selection.cds_period > 1 {
            self.last_scored_feature.clear();
            self.last_scored_feature.extend_from_slice(feature);
        }
        self.skips_since_scored = 0;
        Ok((self.cached_scores.clone(), false))
    }

    fn truncated(&self, feature: &[f32]) -> Vec<f32> {
        match self.selection.max_dims {
            Some(d) if d < feature.len() => {
                // Dimension truncation keeps the vector length (the model
                // expects the full dimension) but zeroes the tail so those
                // dimensions contribute only their constant term.
                let mut v = feature.to_vec();
                for x in v.iter_mut().skip(d) {
                    *x = 0.0;
                }
                v
            }
            _ => feature.to_vec(),
        }
    }

    /// Advances one HMM by one frame on the configured backend.
    ///
    /// # Errors
    ///
    /// Propagates hardware errors as [`DecodeError::Hardware`].
    pub fn step_hmm(
        &mut self,
        prev_scores: &[LogProb],
        entry_score: LogProb,
        transitions: &TransitionMatrix,
        senone_scores: &[LogProb],
    ) -> Result<HmmStepResult, DecodeError> {
        match &mut self.backend {
            ScoringBackend::Hardware(soc) => {
                let step = soc.step_hmm(prev_scores, entry_score, transitions, senone_scores)?;
                Ok(HmmStepResult {
                    scores: step.scores,
                    exit_score: step.exit_score,
                })
            }
            ScoringBackend::Software => {
                let n = transitions.num_states();
                if prev_scores.len() != n || senone_scores.len() != n {
                    return Err(DecodeError::DimensionMismatch {
                        expected: n,
                        got: prev_scores.len(),
                    });
                }
                let mut scores = Vec::with_capacity(n);
                for (j, &obs_j) in senone_scores.iter().enumerate() {
                    let mut best = LogProb::zero();
                    for (i, a_ij) in transitions.column(j) {
                        let c = prev_scores[i] + a_ij;
                        if c.raw() > best.raw() {
                            best = c;
                        }
                    }
                    if j == 0 && entry_score.raw() > best.raw() {
                        best = entry_score;
                    }
                    scores.push(best + obs_j);
                }
                let mut exit = LogProb::zero();
                for (i, &score_i) in scores.iter().enumerate() {
                    let e = score_i + transitions.log_exit_prob(i);
                    if e.raw() > exit.raw() {
                        exit = e;
                    }
                }
                Ok(HmmStepResult {
                    scores,
                    exit_score: exit,
                })
            }
        }
    }

    /// Records a dictionary / LM fetch over the DMA (hardware backend only).
    pub fn dma_fetch(&mut self, bytes: u64) {
        if let ScoringBackend::Hardware(soc) = &mut self.backend {
            soc.dma_fetch(bytes);
        }
    }

    /// Ends the frame on the hardware backend (charges the host-CPU software
    /// stages and closes the bandwidth window).
    pub fn end_frame(&mut self, active_triphones: usize, lattice_edges: usize) {
        if let ScoringBackend::Hardware(soc) = &mut self.backend {
            soc.end_frame(active_triphones, lattice_edges);
        }
    }

    /// Finishes the utterance, returning the hardware report if available.
    pub fn finish_utterance(&mut self) -> Option<UtteranceReport> {
        self.skips_since_scored = 0;
        self.cached_scores.clear();
        self.last_scored_feature.clear();
        match &mut self.backend {
            ScoringBackend::Hardware(soc) => Some(soc.finish_utterance()),
            ScoringBackend::Software => None,
        }
    }
}

/// Mean squared per-dimension distance between two feature vectors; the CDS
/// stability condition. Mismatched lengths count as infinitely far apart (the
/// frame is rescored).
fn mean_squared_distance(a: &[f32], b: &[f32]) -> f32 {
    if a.len() != b.len() || a.is_empty() {
        return f32::INFINITY;
    }
    let sum: f32 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
    sum / a.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use asr_acoustic::AcousticModelConfig;
    use asr_hw::SocConfig;

    fn model() -> AcousticModel {
        AcousticModel::untrained(AcousticModelConfig::tiny()).unwrap()
    }

    fn hardware_decoder(selection: GmmSelectionConfig) -> PhoneDecoder {
        let backend =
            ScoringBackend::from_kind(&ScoringBackendKind::Hardware(SocConfig::default())).unwrap();
        PhoneDecoder::new(backend, selection)
    }

    #[test]
    fn backend_construction() {
        assert!(ScoringBackend::from_kind(&ScoringBackendKind::Software).is_ok());
        let hw =
            ScoringBackend::from_kind(&ScoringBackendKind::Hardware(SocConfig::default())).unwrap();
        assert!(hw.is_hardware());
        assert!(hw.soc().is_some());
        let sw = ScoringBackend::from_kind(&ScoringBackendKind::Software).unwrap();
        assert!(!sw.is_hardware());
        assert!(sw.soc().is_none());
        let bad = ScoringBackendKind::Hardware(SocConfig {
            num_structures: 0,
            ..SocConfig::default()
        });
        assert!(ScoringBackend::from_kind(&bad).is_err());
    }

    #[test]
    fn hardware_and_software_scores_agree() {
        let m = model();
        let x: Vec<f32> = (0..m.feature_dim()).map(|d| 0.1 * d as f32).collect();
        let ids: Vec<SenoneId> = (0..m.senones().len() as u32).map(SenoneId).collect();

        let mut hw = hardware_decoder(GmmSelectionConfig::default());
        hw.begin_frame(&x);
        let (hw_scores, skipped_hw) = hw.score_frame(&m, &ids, &x).unwrap();

        let mut sw = PhoneDecoder::new(
            ScoringBackend::from_kind(&ScoringBackendKind::Software).unwrap(),
            GmmSelectionConfig::default(),
        );
        sw.begin_frame(&x);
        let (sw_scores, skipped_sw) = sw.score_frame(&m, &ids, &x).unwrap();

        assert!(!skipped_hw && !skipped_sw);
        for id in &ids {
            let a = hw_scores[id].raw();
            let b = sw_scores[id].raw();
            assert!((a - b).abs() < 0.1, "{id:?}: hw {a} sw {b}");
        }
    }

    #[test]
    fn cds_skips_and_reuses_scores() {
        let m = model();
        let x = vec![0.2f32; m.feature_dim()];
        let ids: Vec<SenoneId> = (0..5).map(SenoneId).collect();
        let mut dec = hardware_decoder(GmmSelectionConfig::with_cds(2));
        dec.begin_frame(&x);
        let (first, skip0) = dec.score_frame(&m, &ids, &x).unwrap();
        dec.begin_frame(&x);
        let (second, skip1) = dec.score_frame(&m, &ids, &x).unwrap();
        dec.begin_frame(&x);
        let (_third, skip2) = dec.score_frame(&m, &ids, &x).unwrap();
        assert!(!skip0);
        assert!(skip1);
        assert!(!skip2);
        for id in &ids {
            assert_eq!(first[id].raw(), second[id].raw(), "CDS must reuse scores");
        }
        // A senone never scored before gets the floor score on a skipped frame.
        dec.begin_frame(&x);
        let (fourth, skip3) = dec.score_frame(&m, &[SenoneId(20)], &x).unwrap();
        assert!(skip3);
        assert!(fourth[&SenoneId(20)].raw() < first[&ids[0]].raw());
    }

    #[test]
    fn cds_rescores_when_the_acoustics_move() {
        let m = model();
        let x = vec![0.2f32; m.feature_dim()];
        // A feature jump far beyond cds_threshold (mean squared distance per
        // dimension of 3.0² = 9.0 against the default threshold of 1.0).
        let y = vec![3.2f32; m.feature_dim()];
        let ids: Vec<SenoneId> = (0..5).map(SenoneId).collect();
        let mut dec = hardware_decoder(GmmSelectionConfig::with_cds(2));
        dec.begin_frame(&x);
        let (_, skip0) = dec.score_frame(&m, &ids, &x).unwrap();
        assert!(!skip0);
        // Skip-eligible frame, but the condition fails → full rescore.
        dec.begin_frame(&y);
        let (_, skip1) = dec.score_frame(&m, &ids, &y).unwrap();
        assert!(!skip1);
        // Back to stable acoustics → the skip resumes.
        dec.begin_frame(&y);
        let (_, skip2) = dec.score_frame(&m, &ids, &y).unwrap();
        assert!(skip2);
    }

    #[test]
    fn software_fast_gmm_layers() {
        let m = model();
        let x: Vec<f32> = (0..m.feature_dim()).map(|d| 0.3 * d as f32).collect();
        let ids: Vec<SenoneId> = (0..m.senones().len() as u32).map(SenoneId).collect();
        let full = {
            let mut d = PhoneDecoder::new(
                ScoringBackend::from_kind(&ScoringBackendKind::Software).unwrap(),
                GmmSelectionConfig::default(),
            );
            d.score_frame(&m, &ids, &x).unwrap().0
        };
        let best_comp = {
            let mut d = PhoneDecoder::new(
                ScoringBackend::from_kind(&ScoringBackendKind::Software).unwrap(),
                GmmSelectionConfig {
                    best_component_only: true,
                    ..GmmSelectionConfig::default()
                },
            );
            d.score_frame(&m, &ids, &x).unwrap().0
        };
        let truncated = {
            let mut d = PhoneDecoder::new(
                ScoringBackend::from_kind(&ScoringBackendKind::Software).unwrap(),
                GmmSelectionConfig {
                    max_dims: Some(3),
                    ..GmmSelectionConfig::default()
                },
            );
            d.score_frame(&m, &ids, &x).unwrap().0
        };
        for id in &ids {
            // Best-component is a lower bound on the full mixture.
            assert!(best_comp[id].raw() <= full[id].raw() + 1e-5);
            // Truncation changes the score but keeps it finite.
            assert!(truncated[id].raw().is_finite());
        }
    }

    #[test]
    fn hmm_step_backends_agree() {
        let m = model();
        let t = m.transitions();
        let n = t.num_states();
        let prev = vec![LogProb::new(-4.0), LogProb::new(-6.0), LogProb::new(-9.0)];
        let obs = vec![LogProb::new(-1.0), LogProb::new(-2.0), LogProb::new(-1.5)];
        let mut hw = hardware_decoder(GmmSelectionConfig::default());
        let mut sw = PhoneDecoder::new(
            ScoringBackend::from_kind(&ScoringBackendKind::Software).unwrap(),
            GmmSelectionConfig::default(),
        );
        let a = hw.step_hmm(&prev, LogProb::new(-3.0), t, &obs).unwrap();
        let b = sw.step_hmm(&prev, LogProb::new(-3.0), t, &obs).unwrap();
        assert_eq!(a.scores.len(), n);
        for (x, y) in a.scores.iter().zip(&b.scores) {
            assert!((x.raw() - y.raw()).abs() < 1e-3);
        }
        assert!((a.exit_score.raw() - b.exit_score.raw()).abs() < 1e-3);
        // Software backend validates shapes.
        assert!(sw.step_hmm(&prev[..2], LogProb::zero(), t, &obs).is_err());
    }

    #[test]
    fn utterance_lifecycle() {
        let m = model();
        let x = vec![0.0f32; m.feature_dim()];
        let mut dec = hardware_decoder(GmmSelectionConfig::default());
        dec.begin_frame(&x);
        dec.score_frame(&m, &[SenoneId(0), SenoneId(1)], &x)
            .unwrap();
        dec.dma_fetch(128);
        dec.end_frame(2, 1);
        let report = dec.finish_utterance().unwrap();
        assert_eq!(report.frames, 1);
        assert_eq!(report.senones_scored, 2);
        // Software backend has no hardware report.
        let mut sw = PhoneDecoder::new(
            ScoringBackend::from_kind(&ScoringBackendKind::Software).unwrap(),
            GmmSelectionConfig::default(),
        );
        sw.begin_frame(&x);
        sw.dma_fetch(128);
        sw.end_frame(0, 0);
        assert!(sw.finish_utterance().is_none());
    }
}
