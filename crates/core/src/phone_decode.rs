//! The phone-decode stage: senone scoring and HMM stepping through the
//! object-safe [`SenoneScorer`] seam, plus the backend-independent fast-GMM
//! frame layer (Conditional Down Sampling) and the senone-score arena.

use crate::config::GmmSelectionConfig;
pub use crate::scorer::HmmStepResult;
use crate::scorer::{SenoneScoreArena, SenoneScorer};
use crate::DecodeError;
use asr_acoustic::{AcousticModel, SenoneId, TransitionMatrix};
use asr_float::LogProb;
use asr_hw::UtteranceReport;

/// Log-score handicap applied to senones that were never cached when a frame
/// is skipped by Conditional Down Sampling: poor but finite, so new words can
/// still start at reduced fidelity.
const CDS_FLOOR_OFFSET: f32 = -20.0;

/// The phone-decode stage.
///
/// Owns a boxed [`SenoneScorer`] (the accelerator seam), the
/// [`SenoneScoreArena`] holding the current frame's scores, and the
/// Conditional Down Sampling state.  CDS lives here rather than in the
/// scorers because the frame layer is backend-independent: a skipped frame
/// never reaches the backend at all — which is exactly the power saving.
#[derive(Debug)]
pub struct PhoneDecoder {
    scorer: Box<dyn SenoneScorer>,
    selection: GmmSelectionConfig,
    /// Scores of the current frame (or, on CDS skip frames, the last fully
    /// scored frame).
    arena: SenoneScoreArena,
    /// Feature vector of the last fully scored frame (the CDS condition
    /// compares against this, not against the previous frame, so drift over a
    /// run of skipped frames is bounded).
    last_scored_feature: Vec<f32>,
    /// Frames skipped since the last full scoring pass.
    skips_since_scored: usize,
    /// Reusable per-frame result buffer passed to
    /// [`SenoneScorer::score_senones_into`], so scoring a frame costs no
    /// result allocation once the buffer has grown to the active-set size.
    scored_scratch: Vec<(SenoneId, LogProb)>,
}

impl PhoneDecoder {
    /// Creates the stage around any scoring backend.
    pub fn new(scorer: Box<dyn SenoneScorer>, selection: GmmSelectionConfig) -> Self {
        PhoneDecoder {
            scorer,
            selection,
            arena: SenoneScoreArena::new(),
            last_scored_feature: Vec::new(),
            skips_since_scored: 0,
            scored_scratch: Vec::new(),
        }
    }

    /// The scoring backend.
    pub fn scorer(&self) -> &dyn SenoneScorer {
        self.scorer.as_ref()
    }

    /// The senone-score arena (current frame's scores).
    pub fn arena(&self) -> &SenoneScoreArena {
        &self.arena
    }

    /// Clears all per-utterance state — CDS cache, arena, and the backend's
    /// own counters — so the decoder can start the next utterance of a batch
    /// from a clean slate while keeping warmed model-level caches.
    pub fn begin_utterance(&mut self) {
        self.skips_since_scored = 0;
        self.last_scored_feature.clear();
        self.arena.clear();
        self.scorer.reset();
    }

    /// Starts a frame: loads the feature vector into the backend.
    pub fn begin_frame(&mut self, feature: &[f32]) {
        self.scorer.begin_frame(feature);
    }

    /// Scores the requested senones for the current frame into the arena,
    /// honouring the fast-GMM frame layer.  Returns whether the evaluation
    /// was skipped by Conditional Down Sampling; individual scores are read
    /// back with [`PhoneDecoder::score_of`].
    ///
    /// # Errors
    ///
    /// Propagates backend errors (e.g. [`DecodeError::Hardware`]).
    pub fn score_frame(
        &mut self,
        model: &AcousticModel,
        active: &[SenoneId],
        feature: &[f32],
    ) -> Result<bool, DecodeError> {
        let cds_skip = self.selection.cds_period > 1
            && self.arena.has_scores()
            && self.skips_since_scored + 1 < self.selection.cds_period
            && mean_squared_distance(feature, &self.last_scored_feature)
                <= self.selection.cds_threshold;
        if cds_skip {
            // Reuse the previous frame's scores; senones that were not cached
            // get a neutral (poor but finite) floor so new words can still
            // start, at reduced fidelity — this is the accuracy/power
            // trade-off CDS makes.
            let floor = self.arena.best() + LogProb::new(CDS_FLOOR_OFFSET);
            self.arena.reuse_with_floor(floor);
            self.skips_since_scored += 1;
            return Ok(true);
        }

        self.scored_scratch.clear();
        self.scorer
            .score_senones_into(model, active, feature, &mut self.scored_scratch)?;
        self.arena.begin_scored_frame(model.senones().len());
        for &(id, score) in &self.scored_scratch {
            self.arena.set(id, score);
        }
        // CDS bookkeeping costs a per-frame feature copy; skip it entirely
        // when down-sampling is off.
        if self.selection.cds_period > 1 {
            self.last_scored_feature.clear();
            self.last_scored_feature.extend_from_slice(feature);
        }
        self.skips_since_scored = 0;
        Ok(false)
    }

    /// The score of one senone for the current frame (the arena's floor for
    /// senones that were not scored).
    pub fn score_of(&self, id: SenoneId) -> LogProb {
        self.arena.get(id)
    }

    /// Advances one HMM by one frame on the backend.
    ///
    /// # Errors
    ///
    /// Propagates backend errors as [`DecodeError::Hardware`] or shape errors
    /// as [`DecodeError::DimensionMismatch`].
    pub fn step_hmm(
        &mut self,
        prev_scores: &[LogProb],
        entry_score: LogProb,
        transitions: &TransitionMatrix,
        senone_scores: &[LogProb],
    ) -> Result<HmmStepResult, DecodeError> {
        self.scorer
            .step_hmm(prev_scores, entry_score, transitions, senone_scores)
    }

    /// Records a dictionary / LM fetch over the DMA (hardware backends).
    pub fn dma_fetch(&mut self, bytes: u64) {
        self.scorer.dma_fetch(bytes);
    }

    /// Ends the frame on the backend (charges the host-CPU software stages
    /// and closes the bandwidth window on hardware backends).
    pub fn end_frame(&mut self, active_triphones: usize, lattice_edges: usize) {
        self.scorer.end_frame(active_triphones, lattice_edges);
    }

    /// Finishes the utterance, returning the backend's report if it keeps
    /// one, and clears per-utterance state so the decoder is ready for the
    /// next utterance of a batch.
    pub fn finish_utterance(&mut self) -> Option<UtteranceReport> {
        self.skips_since_scored = 0;
        self.last_scored_feature.clear();
        self.arena.clear();
        self.scorer.finish_utterance()
    }
}

/// Mean squared per-dimension distance between two feature vectors; the CDS
/// stability condition. Mismatched lengths count as infinitely far apart (the
/// frame is rescored).
fn mean_squared_distance(a: &[f32], b: &[f32]) -> f32 {
    if a.len() != b.len() || a.is_empty() {
        return f32::INFINITY;
    }
    let sum: f32 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
    sum / a.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ScoringBackendKind;
    use crate::scorer::software_step_hmm;
    use asr_acoustic::AcousticModelConfig;
    use asr_hw::SocConfig;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn model() -> AcousticModel {
        AcousticModel::untrained(AcousticModelConfig::tiny()).unwrap()
    }

    fn decoder(kind: &ScoringBackendKind, selection: GmmSelectionConfig) -> PhoneDecoder {
        PhoneDecoder::new(kind.build_scorer(&selection).unwrap(), selection)
    }

    fn hardware_decoder(selection: GmmSelectionConfig) -> PhoneDecoder {
        decoder(
            &ScoringBackendKind::Hardware(SocConfig::default()),
            selection,
        )
    }

    fn software_decoder(selection: GmmSelectionConfig) -> PhoneDecoder {
        decoder(&ScoringBackendKind::Software, selection)
    }

    /// A mock backend that counts how often the decode loop actually asks it
    /// to score — the trait-object seam observed from the outside.
    #[derive(Debug)]
    struct CountingScorer {
        score_calls: Arc<AtomicUsize>,
    }

    impl SenoneScorer for CountingScorer {
        fn name(&self) -> &'static str {
            "counting-mock"
        }
        fn begin_frame(&mut self, _feature: &[f32]) {}
        fn score_senones(
            &mut self,
            _model: &AcousticModel,
            active: &[SenoneId],
            _feature: &[f32],
        ) -> Result<Vec<(SenoneId, LogProb)>, DecodeError> {
            self.score_calls.fetch_add(1, Ordering::SeqCst);
            Ok(active.iter().map(|&id| (id, LogProb::new(-2.0))).collect())
        }
        fn step_hmm(
            &mut self,
            prev_scores: &[LogProb],
            entry_score: LogProb,
            transitions: &TransitionMatrix,
            senone_scores: &[LogProb],
        ) -> Result<HmmStepResult, DecodeError> {
            software_step_hmm(prev_scores, entry_score, transitions, senone_scores)
        }
        fn finish_utterance(&mut self) -> Option<UtteranceReport> {
            None
        }
        fn reset(&mut self) {}
    }

    #[test]
    fn mock_scorer_sees_only_unskipped_frames_under_cds() {
        let m = model();
        let calls = Arc::new(AtomicUsize::new(0));
        let mut dec = PhoneDecoder::new(
            Box::new(CountingScorer {
                score_calls: Arc::clone(&calls),
            }),
            GmmSelectionConfig::with_cds(2),
        );
        let x = vec![0.25f32; m.feature_dim()];
        let ids: Vec<SenoneId> = (0..4).map(SenoneId).collect();
        // Six identical frames at cds_period = 2: frames 1, 3 and 5 are
        // skipped, so the backend is asked to score exactly three times.
        let mut skips = Vec::new();
        for _ in 0..6 {
            dec.begin_frame(&x);
            skips.push(dec.score_frame(&m, &ids, &x).unwrap());
        }
        assert_eq!(skips, [false, true, false, true, false, true]);
        assert_eq!(calls.load(Ordering::SeqCst), 3);
        // A new utterance starts from a fully scored frame again.
        assert!(dec.finish_utterance().is_none());
        dec.begin_frame(&x);
        assert!(!dec.score_frame(&m, &ids, &x).unwrap());
        assert_eq!(calls.load(Ordering::SeqCst), 4);
        assert_eq!(dec.scorer().name(), "counting-mock");
    }

    #[test]
    fn hardware_and_software_scores_agree() {
        let m = model();
        let x: Vec<f32> = (0..m.feature_dim()).map(|d| 0.1 * d as f32).collect();
        let ids: Vec<SenoneId> = (0..m.senones().len() as u32).map(SenoneId).collect();

        let mut hw = hardware_decoder(GmmSelectionConfig::default());
        hw.begin_frame(&x);
        let skipped_hw = hw.score_frame(&m, &ids, &x).unwrap();

        let mut sw = software_decoder(GmmSelectionConfig::default());
        sw.begin_frame(&x);
        let skipped_sw = sw.score_frame(&m, &ids, &x).unwrap();

        assert!(!skipped_hw && !skipped_sw);
        for id in &ids {
            let a = hw.score_of(*id).raw();
            let b = sw.score_of(*id).raw();
            assert!((a - b).abs() < 0.1, "{id:?}: hw {a} sw {b}");
        }
    }

    #[test]
    fn cds_skips_and_reuses_scores() {
        let m = model();
        let x = vec![0.2f32; m.feature_dim()];
        let ids: Vec<SenoneId> = (0..5).map(SenoneId).collect();
        let mut dec = hardware_decoder(GmmSelectionConfig::with_cds(2));
        dec.begin_frame(&x);
        let skip0 = dec.score_frame(&m, &ids, &x).unwrap();
        let first: Vec<LogProb> = ids.iter().map(|&id| dec.score_of(id)).collect();
        dec.begin_frame(&x);
        let skip1 = dec.score_frame(&m, &ids, &x).unwrap();
        let second: Vec<LogProb> = ids.iter().map(|&id| dec.score_of(id)).collect();
        dec.begin_frame(&x);
        let skip2 = dec.score_frame(&m, &ids, &x).unwrap();
        assert!(!skip0);
        assert!(skip1);
        assert!(!skip2);
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(a.raw(), b.raw(), "CDS must reuse scores");
        }
        // A senone never scored before gets the floor score on a skipped frame.
        dec.begin_frame(&x);
        let skip3 = dec.score_frame(&m, &[SenoneId(20)], &x).unwrap();
        assert!(skip3);
        assert!(dec.score_of(SenoneId(20)).raw() < first[0].raw());
    }

    #[test]
    fn cds_rescores_when_the_acoustics_move() {
        let m = model();
        let x = vec![0.2f32; m.feature_dim()];
        // A feature jump far beyond cds_threshold (mean squared distance per
        // dimension of 3.0² = 9.0 against the default threshold of 1.0).
        let y = vec![3.2f32; m.feature_dim()];
        let ids: Vec<SenoneId> = (0..5).map(SenoneId).collect();
        let mut dec = hardware_decoder(GmmSelectionConfig::with_cds(2));
        dec.begin_frame(&x);
        assert!(!dec.score_frame(&m, &ids, &x).unwrap());
        // Skip-eligible frame, but the condition fails → full rescore.
        dec.begin_frame(&y);
        assert!(!dec.score_frame(&m, &ids, &y).unwrap());
        // Back to stable acoustics → the skip resumes.
        dec.begin_frame(&y);
        assert!(dec.score_frame(&m, &ids, &y).unwrap());
    }

    #[test]
    fn begin_utterance_resets_the_cds_cache() {
        let m = model();
        let x = vec![0.4f32; m.feature_dim()];
        let ids: Vec<SenoneId> = (0..5).map(SenoneId).collect();
        let mut dec = software_decoder(GmmSelectionConfig::with_cds(2));
        dec.begin_frame(&x);
        assert!(!dec.score_frame(&m, &ids, &x).unwrap());
        // Without the reset this frame would be CDS-skipped against the
        // previous utterance's cache — exactly the stale-state bug the batch
        // API must not have.
        dec.begin_utterance();
        dec.begin_frame(&x);
        assert!(!dec.score_frame(&m, &ids, &x).unwrap());
    }

    #[test]
    fn software_fast_gmm_layers() {
        let m = model();
        let x: Vec<f32> = (0..m.feature_dim()).map(|d| 0.3 * d as f32).collect();
        let ids: Vec<SenoneId> = (0..m.senones().len() as u32).map(SenoneId).collect();
        let score_with = |selection: GmmSelectionConfig| -> Vec<LogProb> {
            let mut d = software_decoder(selection);
            d.score_frame(&m, &ids, &x).unwrap();
            ids.iter().map(|&id| d.score_of(id)).collect()
        };
        let full = score_with(GmmSelectionConfig::default());
        let best_comp = score_with(GmmSelectionConfig {
            best_component_only: true,
            ..GmmSelectionConfig::default()
        });
        let truncated = score_with(GmmSelectionConfig {
            max_dims: Some(3),
            ..GmmSelectionConfig::default()
        });
        for (k, _) in ids.iter().enumerate() {
            // Best-component is a lower bound on the full mixture.
            assert!(best_comp[k].raw() <= full[k].raw() + 1e-5);
            // Truncation changes the score but keeps it finite.
            assert!(truncated[k].raw().is_finite());
        }
    }

    #[test]
    fn hmm_step_backends_agree() {
        let m = model();
        let t = m.transitions();
        let n = t.num_states();
        let prev = vec![LogProb::new(-4.0), LogProb::new(-6.0), LogProb::new(-9.0)];
        let obs = vec![LogProb::new(-1.0), LogProb::new(-2.0), LogProb::new(-1.5)];
        let mut hw = hardware_decoder(GmmSelectionConfig::default());
        let mut sw = software_decoder(GmmSelectionConfig::default());
        let a = hw.step_hmm(&prev, LogProb::new(-3.0), t, &obs).unwrap();
        let b = sw.step_hmm(&prev, LogProb::new(-3.0), t, &obs).unwrap();
        assert_eq!(a.scores.len(), n);
        for (x, y) in a.scores.iter().zip(&b.scores) {
            assert!((x.raw() - y.raw()).abs() < 1e-3);
        }
        assert!((a.exit_score.raw() - b.exit_score.raw()).abs() < 1e-3);
        // Software backend validates shapes.
        assert!(sw.step_hmm(&prev[..2], LogProb::zero(), t, &obs).is_err());
    }

    #[test]
    fn utterance_lifecycle() {
        let m = model();
        let x = vec![0.0f32; m.feature_dim()];
        let mut dec = hardware_decoder(GmmSelectionConfig::default());
        dec.begin_frame(&x);
        dec.score_frame(&m, &[SenoneId(0), SenoneId(1)], &x)
            .unwrap();
        dec.dma_fetch(128);
        dec.end_frame(2, 1);
        let report = dec.finish_utterance().unwrap();
        assert_eq!(report.frames, 1);
        assert_eq!(report.senones_scored, 2);
        // The same decoder serves a second utterance from clean counters.
        dec.begin_frame(&x);
        dec.score_frame(&m, &[SenoneId(0)], &x).unwrap();
        dec.end_frame(1, 0);
        let second = dec.finish_utterance().unwrap();
        assert_eq!(second.frames, 1);
        assert_eq!(second.senones_scored, 1);
        // Software backend has no hardware report.
        let mut sw = software_decoder(GmmSelectionConfig::default());
        sw.begin_frame(&x);
        sw.dma_fetch(128);
        sw.end_frame(0, 0);
        assert!(sw.finish_utterance().is_none());
    }
}
