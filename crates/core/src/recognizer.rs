//! The top-level recogniser: frontend to recognised text.

use crate::config::DecoderConfig;
use crate::lattice::WordLattice;
use crate::phone_decode::PhoneDecoder;
use crate::search::{SearchNetwork, SearchOutcome, TokenPassingSearch};
use crate::stats::DecodeStats;
use crate::DecodeError;
use asr_acoustic::AcousticModel;
use asr_float::LogProb;
use asr_frontend::Frontend;
use asr_hw::UtteranceReport;
use asr_lexicon::{Dictionary, NGramModel, WordId};

/// A recognised word sequence.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Hypothesis {
    /// Word identifiers in order.
    pub words: Vec<WordId>,
    /// Word spellings in order (the paper's word-ID → ASCII mapping applied).
    pub text: Vec<String>,
}

impl Hypothesis {
    /// The hypothesis as a single space-separated string.
    pub fn to_sentence(&self) -> String {
        self.text.join(" ")
    }
}

/// Everything produced by decoding one utterance.
#[derive(Debug, Clone)]
pub struct DecodeResult {
    /// The utterance chosen by the global best path search over the lattice
    /// (falls back to the live search's best token when the lattice search
    /// finds nothing).
    pub hypothesis: Hypothesis,
    /// The raw best-token hypothesis from the on-the-fly search.
    pub live_hypothesis: Hypothesis,
    /// Combined acoustic + LM score of the live best-token hypothesis
    /// ([`asr_float::LogProb::zero`] when nothing was recognised) — the
    /// utterance-level figure the streaming equivalence property compares.
    pub best_score: LogProb,
    /// The word lattice.
    pub lattice: WordLattice,
    /// Per-frame decoding statistics (active senones, pruning, CDS).
    pub stats: DecodeStats,
    /// Hardware report (cycles, bandwidth, power, energy) when decoding on the
    /// hardware backend.
    pub hardware: Option<UtteranceReport>,
}

impl DecodeResult {
    /// The typed result of decoding zero frames: empty hypotheses, an empty
    /// lattice, zero-frame statistics, no hardware report.  Returned by the
    /// decode entry points for empty utterances instead of running the search
    /// machinery (and, historically, leaking stale CDS state into the next
    /// utterance of a batch).
    pub fn empty() -> Self {
        DecodeResult {
            hypothesis: Hypothesis::default(),
            live_hypothesis: Hypothesis::default(),
            best_score: LogProb::zero(),
            lattice: WordLattice::new(0),
            stats: DecodeStats::new(),
            hardware: None,
        }
    }

    /// Whether this is the result of decoding zero frames.
    pub fn is_empty(&self) -> bool {
        self.stats.num_frames() == 0
    }
}

/// The complete recogniser of Figure 1.
#[derive(Debug)]
pub struct Recognizer {
    model: AcousticModel,
    dictionary: Dictionary,
    lm: NGramModel,
    network: SearchNetwork,
    config: DecoderConfig,
}

impl Recognizer {
    /// Assembles a recogniser from its knowledge sources.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::InvalidConfig`] for an invalid decoder
    /// configuration and [`DecodeError::InconsistentModels`] if the dictionary
    /// references phones missing from the acoustic model.
    pub fn new(
        model: AcousticModel,
        dictionary: Dictionary,
        lm: NGramModel,
        config: DecoderConfig,
    ) -> Result<Self, DecodeError> {
        config.validate()?;
        let network = SearchNetwork::build(&model, &dictionary)?;
        Ok(Recognizer {
            model,
            dictionary,
            lm,
            network,
            config,
        })
    }

    /// The acoustic model.
    pub fn model(&self) -> &AcousticModel {
        &self.model
    }

    /// The dictionary.
    pub fn dictionary(&self) -> &Dictionary {
        &self.dictionary
    }

    /// The language model.
    pub fn language_model(&self) -> &NGramModel {
        &self.lm
    }

    /// The decoder configuration.
    pub fn config(&self) -> &DecoderConfig {
        &self.config
    }

    /// The static search network.
    pub fn network(&self) -> &SearchNetwork {
        &self.network
    }

    fn spell(&self, words: &[WordId]) -> Hypothesis {
        Hypothesis {
            words: words.to_vec(),
            text: words
                .iter()
                .map(|&w| self.dictionary.spelling(w).unwrap_or("<unk>").to_string())
                .collect(),
        }
    }

    /// Builds a fresh phone decoder from the configured backend, ready to
    /// serve one utterance at a time (reusable across a batch).
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::InvalidConfig`] if the backend configuration is
    /// invalid.
    pub fn phone_decoder(&self) -> Result<PhoneDecoder, DecodeError> {
        Ok(PhoneDecoder::new(
            self.config
                .backend
                .build_scorer(&self.config.gmm_selection)?,
            self.config.gmm_selection,
        ))
    }

    /// Decodes one utterance of feature vectors on the configured backend.
    ///
    /// An empty utterance yields [`DecodeResult::empty`].
    ///
    /// # Errors
    ///
    /// Propagates configuration, dimension and hardware errors.
    pub fn decode_features(&self, features: &[Vec<f32>]) -> Result<DecodeResult, DecodeError> {
        let mut phone_decoder = self.phone_decoder()?;
        self.decode_features_with(features, &mut phone_decoder)
    }

    /// Decodes one utterance through a caller-supplied phone decoder — the
    /// entry point for custom [`SenoneScorer`] backends and for reusing one
    /// scorer (and its warmed model caches) across many utterances.
    ///
    /// Per-utterance state (the CDS cache, the score arena, the backend's
    /// counters) is cleared on entry, so a decoder can be passed back in for
    /// utterance after utterance; model-level caches survive.
    ///
    /// [`SenoneScorer`]: crate::SenoneScorer
    ///
    /// # Errors
    ///
    /// Propagates dimension and backend errors.
    pub fn decode_features_with(
        &self,
        features: &[Vec<f32>],
        phone_decoder: &mut PhoneDecoder,
    ) -> Result<DecodeResult, DecodeError> {
        // Validate up front for every backend: the software scorer would
        // otherwise silently truncate short frames, and the hardware model
        // only notices several layers down.
        let expected = self.model.feature_dim();
        if let Some(bad) = features.iter().find(|f| f.len() != expected) {
            return Err(DecodeError::DimensionMismatch {
                expected,
                got: bad.len(),
            });
        }
        // A clean per-utterance slate even when the decoder is reused (or a
        // previous decode aborted half-way through an utterance).
        phone_decoder.begin_utterance();
        if features.is_empty() {
            return Ok(DecodeResult::empty());
        }
        let search = TokenPassingSearch::new(&self.model, &self.network, &self.lm, &self.config);
        let outcome = search.decode(features, phone_decoder)?;
        let hardware = phone_decoder.finish_utterance();
        Ok(self.assemble_result(outcome, hardware))
    }

    /// Runs the global best path search over a finished [`SearchOutcome`]'s
    /// lattice and packages everything into a [`DecodeResult`] — shared by
    /// the offline decode above and [`DecodeSession::finish`], so both paths
    /// post-process identically by construction.
    ///
    /// [`DecodeSession::finish`]: crate::DecodeSession::finish
    pub(crate) fn assemble_result(
        &self,
        outcome: SearchOutcome,
        hardware: Option<UtteranceReport>,
    ) -> DecodeResult {
        let lattice_words = outcome.lattice.best_path(
            &self.lm,
            self.config.lm_weight,
            self.config.word_insertion_penalty,
            3,
        );
        let chosen = if lattice_words.is_empty() {
            outcome.best_token_words.clone()
        } else {
            lattice_words
        };
        DecodeResult {
            hypothesis: self.spell(&chosen),
            live_hypothesis: self.spell(&outcome.best_token_words),
            best_score: outcome.best_token_score,
            lattice: outcome.lattice,
            stats: outcome.stats,
            hardware,
        }
    }

    /// Decodes a batch of utterances through **one** scorer, so the backend's
    /// model-level caches (the SoC model, the SIMD scorer's flattened
    /// parameter arena) and the senone-score arena amortise across the whole
    /// stream instead of being rebuilt per utterance.
    ///
    /// Results are positionally aligned with the input; per-utterance state
    /// (including the CDS last-scored-frame cache) is reset between
    /// utterances, so the outputs are identical to decoding each utterance
    /// alone with [`Recognizer::decode_features`].  Empty utterances yield
    /// [`DecodeResult::empty`].
    ///
    /// # Examples
    ///
    /// ```
    /// use asr_core::{DecoderConfig, Recognizer};
    /// use asr_corpus::{TaskConfig, TaskGenerator};
    ///
    /// let task = TaskGenerator::new(5).generate(&TaskConfig::tiny()).unwrap();
    /// let recognizer = Recognizer::new(
    ///     task.acoustic_model.clone(),
    ///     task.dictionary.clone(),
    ///     task.language_model.clone(),
    ///     DecoderConfig::simd(),
    /// )
    /// .unwrap();
    /// let (first, first_ref) = task.synthesize_utterance(1, 0.2, 1);
    /// let (second, second_ref) = task.synthesize_utterance(2, 0.2, 2);
    /// let results = recognizer.decode_batch(&[first, second]).unwrap();
    /// assert_eq!(results[0].hypothesis.words, first_ref);
    /// assert_eq!(results[1].hypothesis.words, second_ref);
    /// ```
    ///
    /// # Errors
    ///
    /// Fails on the first utterance that fails to decode.
    pub fn decode_batch<U: AsRef<[Vec<f32>]>>(
        &self,
        utterances: &[U],
    ) -> Result<Vec<DecodeResult>, DecodeError> {
        let mut phone_decoder = self.phone_decoder()?;
        self.decode_batch_with(utterances, &mut phone_decoder)
    }

    /// Decodes a batch of utterances through a caller-supplied phone decoder
    /// — [`Recognizer::decode_batch`] with the scorer's lifetime under the
    /// caller's control, so one decoder (and its warmed model caches) can
    /// serve *many* batches.  This is the entry point the serving layer's
    /// micro-batcher uses: each coalesced batch reuses the worker's
    /// long-lived decoder instead of rebuilding the backend per flush.
    ///
    /// # Errors
    ///
    /// Fails on the first utterance that fails to decode.
    pub fn decode_batch_with<U: AsRef<[Vec<f32>]>>(
        &self,
        utterances: &[U],
        phone_decoder: &mut PhoneDecoder,
    ) -> Result<Vec<DecodeResult>, DecodeError> {
        utterances
            .iter()
            .map(|u| self.decode_features_with(u.as_ref(), phone_decoder))
            .collect()
    }

    /// Decodes raw audio samples by running the software frontend first.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::DimensionMismatch`] if the frontend's feature
    /// dimension differs from the acoustic model's, plus any decoding error.
    pub fn decode_audio(
        &self,
        samples: &[f32],
        frontend: &Frontend,
    ) -> Result<DecodeResult, DecodeError> {
        if frontend.config().feature_dim() != self.model.feature_dim() {
            return Err(DecodeError::DimensionMismatch {
                expected: self.model.feature_dim(),
                got: frontend.config().feature_dim(),
            });
        }
        let features = frontend.process(samples);
        self.decode_features(&features)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ScoringBackendKind;
    use asr_acoustic::{
        AcousticModelConfig, DiagGaussian, GaussianMixture, HmmTopology, PhoneId, SenoneId,
        SenonePool, TransitionMatrix, Triphone, TriphoneInventory,
    };
    use asr_lexicon::Pronunciation;

    const DIM: usize = 4;
    const NUM_PHONES: usize = 5;

    fn tiny_model() -> AcousticModel {
        let states = 3;
        let mixtures: Vec<GaussianMixture> = (0..NUM_PHONES * states)
            .map(|i| {
                let mean = vec![(7 * (i / states) + 2 * (i % states)) as f32; DIM];
                GaussianMixture::new(vec![(
                    1.0,
                    DiagGaussian::new(mean, vec![0.5; DIM]).unwrap(),
                )])
                .unwrap()
            })
            .collect();
        let pool = SenonePool::new(mixtures).unwrap();
        let mut inventory = TriphoneInventory::new(HmmTopology::Three);
        for p in 0..NUM_PHONES {
            let senones: Vec<SenoneId> = (0..states)
                .map(|s| SenoneId((p * states + s) as u32))
                .collect();
            inventory
                .add(Triphone::context_independent(PhoneId(p as u16)), senones)
                .unwrap();
        }
        AcousticModel::new(
            AcousticModelConfig {
                num_senones: NUM_PHONES * states,
                num_components: 1,
                feature_dim: DIM,
                topology: HmmTopology::Three,
                num_phones: NUM_PHONES,
                self_loop_prob: 0.5,
            },
            pool,
            inventory,
            TransitionMatrix::bakis(HmmTopology::Three, 0.5).unwrap(),
        )
        .unwrap()
    }

    fn tiny_dictionary() -> Dictionary {
        let mut d = Dictionary::new();
        let p = |ids: &[u16]| Pronunciation::new(ids.iter().map(|&i| PhoneId(i)).collect());
        d.add_word("one", p(&[1, 2])).unwrap();
        d.add_word("two", p(&[3, 4])).unwrap();
        d
    }

    fn synth(dict: &Dictionary, words: &[&str]) -> Vec<Vec<f32>> {
        let mut frames = Vec::new();
        for w in words {
            let id = dict.id_of(w).unwrap();
            for &phone in dict.pronunciation(id).unwrap().phones() {
                for state in 0..3usize {
                    for _ in 0..3 {
                        frames.push(vec![(7 * phone.index() + 2 * state) as f32; DIM]);
                    }
                }
            }
        }
        frames
    }

    fn recognizer(backend: ScoringBackendKind) -> Recognizer {
        Recognizer::new(
            tiny_model(),
            tiny_dictionary(),
            NGramModel::uniform(2).unwrap(),
            DecoderConfig {
                backend,
                ..DecoderConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn end_to_end_software_decode() {
        let rec = recognizer(ScoringBackendKind::Software);
        let dict = tiny_dictionary();
        let features = synth(&dict, &["one", "two"]);
        let result = rec.decode_features(&features).unwrap();
        assert_eq!(result.hypothesis.text, vec!["one", "two"]);
        assert_eq!(result.hypothesis.to_sentence(), "one two");
        assert!(result.hardware.is_none());
        assert!(!result.lattice.is_empty());
        assert_eq!(result.stats.num_frames(), features.len());
        assert_eq!(result.live_hypothesis.words, result.hypothesis.words);
    }

    #[test]
    fn end_to_end_hardware_decode_with_report() {
        let rec = recognizer(ScoringBackendKind::Hardware(asr_hw::SocConfig::default()));
        let dict = tiny_dictionary();
        let features = synth(&dict, &["two", "one"]);
        let result = rec.decode_features(&features).unwrap();
        assert_eq!(result.hypothesis.text, vec!["two", "one"]);
        let hw = result.hardware.expect("hardware backend produces a report");
        assert_eq!(hw.frames, features.len());
        assert!(hw.senones_scored > 0);
        assert!(hw.real_time_fraction > 0.99, "tiny task must be real-time");
        assert!(hw.energy.total_energy_j() > 0.0);
        // Feedback keeps the active fraction well under 1.
        assert!(result.stats.mean_active_senone_fraction() < 0.9);
    }

    #[test]
    fn accessors_and_validation() {
        let rec = recognizer(ScoringBackendKind::Software);
        assert_eq!(rec.dictionary().len(), 2);
        assert_eq!(rec.model().senones().len(), NUM_PHONES * 3);
        assert_eq!(rec.language_model().vocab_size(), 2);
        assert!(rec.network().num_instances() > 0);
        assert!(rec.config().validate().is_ok());
        // Invalid config is rejected at construction.
        let mut bad = DecoderConfig::software();
        bad.beam = -1.0;
        assert!(Recognizer::new(
            tiny_model(),
            tiny_dictionary(),
            NGramModel::uniform(2).unwrap(),
            bad
        )
        .is_err());
    }

    #[test]
    fn decode_audio_checks_dimensions() {
        let rec = recognizer(ScoringBackendKind::Software);
        let frontend = Frontend::new(asr_frontend::FrontendConfig::default()).unwrap();
        // The default frontend produces 39-dim vectors but the tiny model wants 4.
        assert!(matches!(
            rec.decode_audio(&vec![0.0; 16_000], &frontend),
            Err(DecodeError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn empty_feature_input_is_the_typed_empty_result() {
        let rec = recognizer(ScoringBackendKind::Software);
        let result = rec.decode_features(&[]).unwrap();
        assert!(result.is_empty());
        assert!(result.hypothesis.words.is_empty());
        assert!(result.hypothesis.to_sentence().is_empty());
        assert!(result.lattice.is_empty());
        assert_eq!(result.stats.num_frames(), 0);
        assert!(result.hardware.is_none());
        assert_eq!(Hypothesis::default().to_sentence(), "");
        // DecodeResult::empty() is what the decode path returns.
        assert!(DecodeResult::empty().is_empty());
    }

    #[test]
    fn end_to_end_simd_decode() {
        let rec = recognizer(ScoringBackendKind::Simd);
        let dict = tiny_dictionary();
        let features = synth(&dict, &["two", "one"]);
        let result = rec.decode_features(&features).unwrap();
        assert_eq!(result.hypothesis.text, vec!["two", "one"]);
        assert!(result.hardware.is_none());
    }

    #[test]
    fn decode_batch_matches_singles_on_every_backend() {
        let dict = tiny_dictionary();
        let utterances = [
            synth(&dict, &["one", "two"]),
            synth(&dict, &["two"]),
            synth(&dict, &["two", "one"]),
        ];
        for backend in [
            ScoringBackendKind::Software,
            ScoringBackendKind::Simd,
            ScoringBackendKind::Hardware(asr_hw::SocConfig::default()),
            ScoringBackendKind::Sharded {
                shards: 2,
                inner: Box::new(ScoringBackendKind::Hardware(asr_hw::SocConfig::default())),
                tuning: crate::config::ShardTuning::default(),
            },
        ] {
            let rec = recognizer(backend);
            let batch = rec.decode_batch(&utterances).unwrap();
            assert_eq!(batch.len(), utterances.len());
            for (features, batched) in utterances.iter().zip(&batch) {
                let single = rec.decode_features(features).unwrap();
                assert_eq!(batched.hypothesis, single.hypothesis);
                assert_eq!(batched.live_hypothesis, single.live_hypothesis);
                assert_eq!(batched.stats.num_frames(), single.stats.num_frames());
                assert_eq!(
                    batched.stats.total_senones_scored(),
                    single.stats.total_senones_scored()
                );
                assert_eq!(
                    batched
                        .hardware
                        .as_ref()
                        .map(|h| (h.frames, h.senones_scored)),
                    single
                        .hardware
                        .as_ref()
                        .map(|h| (h.frames, h.senones_scored)),
                );
            }
        }
    }

    #[test]
    fn decode_batch_handles_empty_utterances_and_resets_cds() {
        let dict = tiny_dictionary();
        let utt = synth(&dict, &["one"]);
        let mut config = DecoderConfig::software();
        config.gmm_selection = crate::config::GmmSelectionConfig::with_cds(2);
        let rec = Recognizer::new(
            tiny_model(),
            tiny_dictionary(),
            NGramModel::uniform(2).unwrap(),
            config,
        )
        .unwrap();
        let batch = rec
            .decode_batch(&[utt.clone(), Vec::new(), utt.clone()])
            .unwrap();
        assert!(batch[1].is_empty());
        // With per-utterance CDS reset, the first and third results are
        // bit-identical — no state leaks across the empty utterance.
        assert_eq!(batch[0].hypothesis, batch[2].hypothesis);
        assert_eq!(
            batch[0].stats.total_senones_scored(),
            batch[2].stats.total_senones_scored()
        );
        assert_eq!(
            batch[0].stats.cds_skip_fraction(),
            batch[2].stats.cds_skip_fraction()
        );
    }
}
