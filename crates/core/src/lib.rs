//! # asr-core — the low-power large-vocabulary speech recogniser
//!
//! This crate assembles the paper's full recognition pipeline (Figure 1):
//!
//! ```text
//! speech ─► Frontend ─► Phone decode ─► Word decode ─► Global best path ─► text
//!            (software)  (OP unit +      (software,      (software, uses
//!                         Viterbi unit)   lexical tree)    the language model)
//!                             ▲               │
//!                             └── "Phones for evaluation" feedback ──┘
//! ```
//!
//! * The **phone-decode stage** scores only the *active* senones each frame —
//!   the set requested by the word-decode stage — through the object-safe
//!   [`SenoneScorer`] seam.  Three backends ship in-tree (the cycle-accurate
//!   hardware model of `asr-hw`, a scalar software reference, and a
//!   batching-aware SIMD-style software scorer) and custom accelerators plug
//!   in as `Box<dyn SenoneScorer>` without touching this crate.
//! * The **word-decode stage** is a token-passing search over the lexical
//!   prefix tree: it advances triphone HMM instances with the Viterbi unit,
//!   starts new words from the tree root, records word-end candidates into a
//!   word lattice, and feeds the next frame's active senone set back to the
//!   phone decode.
//! * The **global best path search** rescoes the word lattice with the n-gram
//!   language model to produce the recognised utterance.
//!
//! See the `examples/` directory of the workspace for full end-to-end runs on
//! synthetic tasks built by `asr-corpus`; the unit tests in
//! [`recognizer`] show a minimal hand-built task decoded through both the
//! hardware and software backends.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod config;
pub mod lattice;
pub mod phone_decode;
pub mod recognizer;
pub mod scorer;
pub mod search;
pub mod session;
pub mod shard;
pub mod stats;

pub use config::{
    DecoderConfig, GmmSelectionConfig, ScoringBackendKind, ShardDispatch, ShardPartition,
    ShardTuning, DEFAULT_MIN_PARALLEL_SENONES,
};
pub use lattice::{WordLattice, WordLatticeEntry};
pub use phone_decode::PhoneDecoder;
pub use recognizer::{DecodeResult, Hypothesis, Recognizer};
pub use scorer::{
    software_step_hmm, HmmStepResult, SenoneScoreArena, SenoneScorer, SimdScorer, SocScorer,
    SoftwareScorer,
};
pub use search::{SearchNetwork, SearchOutcome, SearchState, TokenPassingSearch};
pub use session::{DecodeSession, PartialHypothesis, SharedDecodeSession};
pub use shard::{ShardedScorer, SHARD_THREADS_SPAWNED_METRIC};
// The deprecated shim stays re-exported so pre-registry callers keep
// compiling; new code reads the metric from the global registry.
#[allow(deprecated)]
pub use shard::shard_threads_spawned_total;
pub use stats::{DecodeStats, FrameStats};

/// Errors produced by decoding.
#[derive(Debug, Clone, PartialEq)]
pub enum DecodeError {
    /// The decoder configuration was invalid.
    InvalidConfig(String),
    /// A feature vector had the wrong dimension.
    DimensionMismatch {
        /// Expected dimension (the acoustic model's).
        expected: usize,
        /// Dimension found in the input.
        got: usize,
    },
    /// The knowledge sources were inconsistent (e.g. dictionary references a
    /// phone with no acoustic model).
    InconsistentModels(String),
    /// An acoustic-model error surfaced during decoding (the typed source is
    /// preserved and exposed through [`std::error::Error::source`]).
    Acoustic(asr_acoustic::AcousticError),
    /// A lexicon / language-model error surfaced during decoding (typed
    /// source preserved).
    Lexicon(asr_lexicon::LexiconError),
    /// A hardware-model error surfaced during decoding (typed source
    /// preserved).
    Hardware(asr_hw::HwError),
}

impl core::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DecodeError::InvalidConfig(msg) => write!(f, "invalid decoder config: {msg}"),
            DecodeError::DimensionMismatch { expected, got } => {
                write!(
                    f,
                    "feature dimension mismatch: expected {expected}, got {got}"
                )
            }
            DecodeError::InconsistentModels(msg) => write!(f, "inconsistent models: {msg}"),
            DecodeError::Acoustic(e) => write!(f, "acoustic model error: {e}"),
            DecodeError::Lexicon(e) => write!(f, "lexicon error: {e}"),
            DecodeError::Hardware(e) => write!(f, "hardware model error: {e}"),
        }
    }
}

impl std::error::Error for DecodeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DecodeError::Acoustic(e) => Some(e),
            DecodeError::Lexicon(e) => Some(e),
            DecodeError::Hardware(e) => Some(e),
            _ => None,
        }
    }
}

impl From<asr_hw::HwError> for DecodeError {
    fn from(e: asr_hw::HwError) -> Self {
        DecodeError::Hardware(e)
    }
}

impl From<asr_acoustic::AcousticError> for DecodeError {
    fn from(e: asr_acoustic::AcousticError) -> Self {
        DecodeError::Acoustic(e)
    }
}

impl From<asr_lexicon::LexiconError> for DecodeError {
    fn from(e: asr_lexicon::LexiconError) -> Self {
        DecodeError::Lexicon(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_conversion() {
        assert!(DecodeError::InvalidConfig("beam".into())
            .to_string()
            .contains("beam"));
        assert!(DecodeError::DimensionMismatch {
            expected: 39,
            got: 13
        }
        .to_string()
        .contains("39"));
        assert!(DecodeError::InconsistentModels("x".into())
            .to_string()
            .contains("x"));
        let hw: DecodeError = asr_hw::HwError::NoFeatureLoaded.into();
        assert!(matches!(hw, DecodeError::Hardware(_)));
        // The typed source survives the conversion.
        use std::error::Error;
        assert!(hw.source().is_some());
        let ac: DecodeError = asr_acoustic::AcousticError::UnknownId("senone#9".into()).into();
        assert!(matches!(ac, DecodeError::Acoustic(_)));
        assert!(ac.source().is_some());
        let lx: DecodeError = asr_lexicon::LexiconError::UnknownWord("zz".into()).into();
        assert!(matches!(lx, DecodeError::Lexicon(_)));
        assert!(lx.to_string().contains("zz"));
    }
}
