//! The object-safe senone-scoring seam.
//!
//! The paper's core observation is that senone scoring dominates LVCSR
//! compute and belongs behind a swappable accelerator interface.  This module
//! is that interface: [`SenoneScorer`] is an object-safe trait for anything
//! that can score a frame's active senones and advance HMMs — the
//! cycle-accurate SoC model ([`SocScorer`]), the scalar software reference
//! ([`SoftwareScorer`]), a batching-aware SIMD-style software path
//! ([`SimdScorer`]), or a user-supplied backend (sharded multi-SoC, remote
//! accelerator, …) plugged in as a `Box<dyn SenoneScorer>` without touching
//! `asr-core`.
//!
//! [`SenoneScoreArena`] is the companion hot-path structure: a
//! generation-stamped dense score table that replaces the per-frame
//! `HashMap<SenoneId, LogProb>` the decoder used to allocate and clone every
//! frame.

use crate::config::GmmSelectionConfig;
use crate::DecodeError;
use asr_acoustic::{AcousticError, AcousticModel, SenoneId, TransitionMatrix};
use asr_float::LogProb;
use asr_hw::{SocConfig, SpeechSoc, UtteranceReport};
use std::borrow::Cow;

/// Result of advancing one HMM by one frame, independent of backend.
#[derive(Debug, Clone, PartialEq)]
pub struct HmmStepResult {
    /// New per-state path scores.
    pub scores: Vec<LogProb>,
    /// Best score of leaving the HMM this frame.
    pub exit_score: LogProb,
}

/// An object-safe senone-scoring / HMM-stepping backend.
///
/// One scorer serves one utterance at a time but may be reused across a whole
/// batch (see [`Recognizer::decode_batch`]): [`SenoneScorer::finish_utterance`]
/// closes an utterance and clears per-utterance accounting, while model-level
/// caches (e.g. [`SimdScorer`]'s flattened parameter arena) survive so their
/// cost amortises across the stream.
///
/// [`Recognizer::decode_batch`]: crate::Recognizer::decode_batch
///
/// # Plugging in a custom backend
///
/// ```
/// use asr_acoustic::{AcousticModel, AcousticModelConfig, SenoneId, TransitionMatrix};
/// use asr_core::{
///     software_step_hmm, DecodeError, GmmSelectionConfig, HmmStepResult, PhoneDecoder,
///     SenoneScorer,
/// };
/// use asr_float::LogProb;
///
/// /// A toy backend: every senone scores a fixed constant.
/// #[derive(Debug)]
/// struct FlatScorer;
///
/// impl SenoneScorer for FlatScorer {
///     fn name(&self) -> &'static str {
///         "flat"
///     }
///     fn begin_frame(&mut self, _feature: &[f32]) {}
///     fn score_senones(
///         &mut self,
///         _model: &AcousticModel,
///         active: &[SenoneId],
///         _feature: &[f32],
///     ) -> Result<Vec<(SenoneId, LogProb)>, DecodeError> {
///         Ok(active.iter().map(|&id| (id, LogProb::new(-1.0))).collect())
///     }
///     fn step_hmm(
///         &mut self,
///         prev_scores: &[LogProb],
///         entry_score: LogProb,
///         transitions: &TransitionMatrix,
///         senone_scores: &[LogProb],
///     ) -> Result<HmmStepResult, DecodeError> {
///         // Custom backends can delegate the Viterbi recursion.
///         software_step_hmm(prev_scores, entry_score, transitions, senone_scores)
///     }
///     fn finish_utterance(&mut self) -> Option<asr_hw::UtteranceReport> {
///         None
///     }
///     fn reset(&mut self) {}
/// }
///
/// // The decoder dispatches through the trait object; no enum to extend.
/// let model = AcousticModel::untrained(AcousticModelConfig::tiny()).unwrap();
/// let mut decoder = PhoneDecoder::new(Box::new(FlatScorer), GmmSelectionConfig::default());
/// let x = vec![0.0; model.feature_dim()];
/// decoder.begin_frame(&x);
/// let skipped = decoder
///     .score_frame(&model, &[SenoneId(0), SenoneId(1)], &x)
///     .unwrap();
/// assert!(!skipped);
/// assert_eq!(decoder.score_of(SenoneId(1)).raw(), -1.0);
/// ```
pub trait SenoneScorer: std::fmt::Debug + Send {
    /// A short stable name for reports and benchmarks.
    fn name(&self) -> &'static str;

    /// Starts a 10 ms frame (hardware backends load the feature vector).
    fn begin_frame(&mut self, feature: &[f32]);

    /// Scores the requested senones for the current frame.
    ///
    /// # Errors
    ///
    /// Backend-specific: hardware errors surface as
    /// [`DecodeError::Hardware`], unknown senone ids as
    /// [`DecodeError::Acoustic`].
    fn score_senones(
        &mut self,
        model: &AcousticModel,
        active: &[SenoneId],
        feature: &[f32],
    ) -> Result<Vec<(SenoneId, LogProb)>, DecodeError>;

    /// Scores the requested senones into a caller-supplied buffer (appended
    /// in `active` order), so a per-frame result allocation can be reused
    /// across frames.  The decode hot path ([`PhoneDecoder::score_frame`])
    /// calls this with a persistent scratch buffer; backends that assemble
    /// results from parts (e.g. [`ShardedScorer`](crate::ShardedScorer))
    /// override it to write the concatenation directly into `out`.
    ///
    /// The default implementation delegates to
    /// [`SenoneScorer::score_senones`] and appends.
    ///
    /// [`PhoneDecoder::score_frame`]: crate::PhoneDecoder::score_frame
    ///
    /// # Errors
    ///
    /// Identical to [`SenoneScorer::score_senones`]; on error `out` may hold
    /// a partial prefix and must be discarded by the caller.
    fn score_senones_into(
        &mut self,
        model: &AcousticModel,
        active: &[SenoneId],
        feature: &[f32],
        out: &mut Vec<(SenoneId, LogProb)>,
    ) -> Result<(), DecodeError> {
        out.extend(self.score_senones(model, active, feature)?);
        Ok(())
    }

    /// Advances one HMM by one frame.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::DimensionMismatch`] for shape errors and
    /// propagates backend failures.
    fn step_hmm(
        &mut self,
        prev_scores: &[LogProb],
        entry_score: LogProb,
        transitions: &TransitionMatrix,
        senone_scores: &[LogProb],
    ) -> Result<HmmStepResult, DecodeError>;

    /// Records a dictionary / LM fetch over the DMA (hardware backends).
    fn dma_fetch(&mut self, _bytes: u64) {}

    /// Ends the frame (hardware backends charge the host-CPU software stages
    /// and close the bandwidth window).
    fn end_frame(&mut self, _active_triphones: usize, _lattice_edges: usize) {}

    /// Finishes the utterance: returns the power/cycle report when the
    /// backend keeps one, and clears all per-utterance accounting so the
    /// scorer can serve the next utterance of a batch.  Model-level caches
    /// survive.
    fn finish_utterance(&mut self) -> Option<UtteranceReport>;

    /// Hard-resets per-utterance state without producing a report (used to
    /// guarantee a clean start even after an aborted decode).  Model-level
    /// caches survive.
    fn reset(&mut self);
}

/// The shared software Viterbi recursion, usable by any [`SenoneScorer`]
/// implementation that has no dedicated HMM-stepping hardware.
///
/// # Errors
///
/// Returns [`DecodeError::DimensionMismatch`] if `prev_scores` or
/// `senone_scores` disagree with the transition matrix's state count.
pub fn software_step_hmm(
    prev_scores: &[LogProb],
    entry_score: LogProb,
    transitions: &TransitionMatrix,
    senone_scores: &[LogProb],
) -> Result<HmmStepResult, DecodeError> {
    let n = transitions.num_states();
    if prev_scores.len() != n || senone_scores.len() != n {
        return Err(DecodeError::DimensionMismatch {
            expected: n,
            got: prev_scores.len(),
        });
    }
    let mut scores = Vec::with_capacity(n);
    for (j, &obs_j) in senone_scores.iter().enumerate() {
        let mut best = LogProb::zero();
        for (i, a_ij) in transitions.column(j) {
            let c = prev_scores[i] + a_ij;
            if c.raw() > best.raw() {
                best = c;
            }
        }
        if j == 0 && entry_score.raw() > best.raw() {
            best = entry_score;
        }
        scores.push(best + obs_j);
    }
    let mut exit = LogProb::zero();
    for (i, &score_i) in scores.iter().enumerate() {
        let e = score_i + transitions.log_exit_prob(i);
        if e.raw() > exit.raw() {
            exit = e;
        }
    }
    Ok(HmmStepResult {
        scores,
        exit_score: exit,
    })
}

/// Applies the dimension-truncation fast-GMM layer: zeroes the feature tail
/// beyond `max_dims` (the model expects the full vector length, so those
/// dimensions contribute only their constant term).  Borrows when no
/// truncation applies.
fn truncated<'a>(selection: &GmmSelectionConfig, feature: &'a [f32]) -> Cow<'a, [f32]> {
    match selection.max_dims {
        Some(d) if d < feature.len() => {
            let mut v = feature.to_vec();
            for x in v.iter_mut().skip(d) {
                *x = 0.0;
            }
            Cow::Owned(v)
        }
        _ => Cow::Borrowed(feature),
    }
}

/// The paper's system: OP units + Viterbi units with cycle, bandwidth and
/// power accounting, behind the [`SenoneScorer`] seam.
#[derive(Debug)]
pub struct SocScorer {
    soc: Box<SpeechSoc>,
}

impl SocScorer {
    /// Builds the scorer around a fresh SoC model.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::InvalidConfig`] if the SoC configuration is
    /// invalid.
    pub fn new(config: SocConfig) -> Result<Self, DecodeError> {
        Ok(SocScorer {
            soc: Box::new(
                SpeechSoc::new(config).map_err(|e| DecodeError::InvalidConfig(e.to_string()))?,
            ),
        })
    }

    /// Access to the underlying SoC model.
    pub fn soc(&self) -> &SpeechSoc {
        &self.soc
    }
}

impl SenoneScorer for SocScorer {
    fn name(&self) -> &'static str {
        "soc"
    }

    fn begin_frame(&mut self, feature: &[f32]) {
        self.soc.begin_frame(feature);
    }

    fn score_senones(
        &mut self,
        model: &AcousticModel,
        active: &[SenoneId],
        _feature: &[f32],
    ) -> Result<Vec<(SenoneId, LogProb)>, DecodeError> {
        Ok(self.soc.score_senones(model, active)?)
    }

    fn score_senones_into(
        &mut self,
        model: &AcousticModel,
        active: &[SenoneId],
        _feature: &[f32],
        out: &mut Vec<(SenoneId, LogProb)>,
    ) -> Result<(), DecodeError> {
        Ok(self.soc.score_senones_into(model, active, out)?)
    }

    fn step_hmm(
        &mut self,
        prev_scores: &[LogProb],
        entry_score: LogProb,
        transitions: &TransitionMatrix,
        senone_scores: &[LogProb],
    ) -> Result<HmmStepResult, DecodeError> {
        let step = self
            .soc
            .step_hmm(prev_scores, entry_score, transitions, senone_scores)?;
        Ok(HmmStepResult {
            scores: step.scores,
            exit_score: step.exit_score,
        })
    }

    fn dma_fetch(&mut self, bytes: u64) {
        self.soc.dma_fetch(bytes);
    }

    fn end_frame(&mut self, active_triphones: usize, lattice_edges: usize) {
        self.soc.end_frame(active_triphones, lattice_edges);
    }

    fn finish_utterance(&mut self) -> Option<UtteranceReport> {
        let report = self.soc.finish_utterance();
        // Clear the counters so the same SoC model (and its warmed caches)
        // serves the next utterance of a batch without re-allocation.
        self.soc.reset();
        Some(report)
    }

    fn reset(&mut self) {
        self.soc.reset();
    }
}

/// The scalar software reference: the same arithmetic as the hardware OP
/// unit, evaluated senone by senone with no cycle/power accounting.
#[derive(Debug, Clone)]
pub struct SoftwareScorer {
    selection: GmmSelectionConfig,
}

impl SoftwareScorer {
    /// Creates the scorer; `selection` controls the Gaussian-layer fast-GMM
    /// shortcuts (best-component-only, dimension truncation).
    pub fn new(selection: GmmSelectionConfig) -> Self {
        SoftwareScorer { selection }
    }
}

impl SenoneScorer for SoftwareScorer {
    fn name(&self) -> &'static str {
        "software"
    }

    fn begin_frame(&mut self, _feature: &[f32]) {}

    fn score_senones(
        &mut self,
        model: &AcousticModel,
        active: &[SenoneId],
        feature: &[f32],
    ) -> Result<Vec<(SenoneId, LogProb)>, DecodeError> {
        let mut out = Vec::with_capacity(active.len());
        self.score_senones_into(model, active, feature, &mut out)?;
        Ok(out)
    }

    fn score_senones_into(
        &mut self,
        model: &AcousticModel,
        active: &[SenoneId],
        feature: &[f32],
        out: &mut Vec<(SenoneId, LogProb)>,
    ) -> Result<(), DecodeError> {
        let x = truncated(&self.selection, feature);
        out.reserve(active.len());
        for &id in active {
            let senone = model
                .senones()
                .get(id)
                .ok_or_else(|| AcousticError::UnknownId(format!("senone {}", id.0)))?;
            let mix = senone.mixture();
            let score = if self.selection.best_component_only {
                mix.max_component_log_likelihood(&x)
            } else {
                mix.log_likelihood(&x)
            };
            out.push((id, score));
        }
        Ok(())
    }

    fn step_hmm(
        &mut self,
        prev_scores: &[LogProb],
        entry_score: LogProb,
        transitions: &TransitionMatrix,
        senone_scores: &[LogProb],
    ) -> Result<HmmStepResult, DecodeError> {
        software_step_hmm(prev_scores, entry_score, transitions, senone_scores)
    }

    fn finish_utterance(&mut self) -> Option<UtteranceReport> {
        None
    }

    fn reset(&mut self) {}
}

/// Flattened Gaussian parameters of one acoustic model, laid out for linear
/// streaming: per mixture component a `C_jk` constant plus contiguous mean
/// and precision (`δ = −1/2σ²`) rows.  This is the software analogue of the
/// OP unit's Gaussian-parameter buffer.
#[derive(Debug)]
struct FlattenedModel {
    /// Identity of the model this table was built from.
    model_ptr: usize,
    num_senones: usize,
    dim: usize,
    /// Per senone: (first component row, component count).
    components: Vec<(usize, usize)>,
    /// Per component row: `C_jk = log(c_k) + log_norm_k`.
    consts: Vec<f32>,
    /// Per component row: `dim` contiguous mean values.
    means: Vec<f32>,
    /// Per component row: `dim` contiguous precision values.
    precisions: Vec<f32>,
}

impl FlattenedModel {
    fn build(model: &AcousticModel) -> Self {
        let dim = model.feature_dim();
        let pool = model.senones();
        let mut components = Vec::with_capacity(pool.len());
        let mut consts = Vec::new();
        let mut means = Vec::new();
        let mut precisions = Vec::new();
        for senone in pool.iter() {
            let mix = senone.mixture();
            components.push((consts.len(), mix.num_components()));
            for (k, g) in mix.components().iter().enumerate() {
                consts.push(mix.log_weight_consts()[k]);
                means.extend_from_slice(g.mean());
                precisions.extend_from_slice(g.precision());
            }
        }
        FlattenedModel {
            model_ptr: model as *const AcousticModel as usize,
            num_senones: pool.len(),
            dim,
            components,
            consts,
            means,
            precisions,
        }
    }

    fn matches(&self, model: &AcousticModel) -> bool {
        self.model_ptr == model as *const AcousticModel as usize
            && self.num_senones == model.senones().len()
            && self.dim == model.feature_dim()
            && self.spot_check(model)
    }

    /// Bit-compares a handful of live parameters against the cached rows.
    /// Address + shape alone are not a safe cache key: a same-shape model
    /// allocated at a recycled address (drop recogniser A, build recogniser
    /// B) would otherwise be scored against A's Gaussians.
    fn spot_check(&self, model: &AcousticModel) -> bool {
        let pool = model.senones();
        let probe = |senone_idx: usize| -> bool {
            let Some(senone) = pool.get(SenoneId(senone_idx as u32)) else {
                return false;
            };
            let mix = senone.mixture();
            let (first, count) = self.components[senone_idx];
            count == mix.num_components()
                && mix
                    .log_weight_consts()
                    .first()
                    .is_some_and(|&c| c.to_bits() == self.consts[first].to_bits())
                && mix.components().first().is_some_and(|g| {
                    g.mean()
                        .first()
                        .is_some_and(|&m| m.to_bits() == self.means[first * self.dim].to_bits())
                        && g.precision().last().is_some_and(|&p| {
                            p.to_bits()
                                == self.precisions[first * self.dim + self.dim - 1].to_bits()
                        })
                })
        };
        probe(0) && probe(self.num_senones - 1)
    }
}

/// Width of the blocked accumulation in [`SimdScorer`]: four independent f32
/// lanes, the shape auto-vectorisers map onto 128-bit SIMD registers.
const LANES: usize = 4;

/// A batching-aware SIMD-style software scorer.
///
/// On first use it flattens the acoustic model's Gaussian parameters into
/// contiguous mean/precision rows (the private `FlattenedModel`) and evaluates each
/// component with four independent accumulator lanes over the feature
/// dimensions — branch-free, cache-linear inner loops that the compiler
/// auto-vectorises.  The flattened arena survives
/// [`SenoneScorer::finish_utterance`]/[`SenoneScorer::reset`], so its build
/// cost amortises across a [`decode_batch`] stream — exactly the cache reuse
/// the batch API exists to exploit.
///
/// [`decode_batch`]: crate::Recognizer::decode_batch
#[derive(Debug)]
pub struct SimdScorer {
    selection: GmmSelectionConfig,
    table: Option<FlattenedModel>,
    table_builds: usize,
}

impl SimdScorer {
    /// Creates the scorer; the parameter arena is built lazily on the first
    /// scored frame.
    pub fn new(selection: GmmSelectionConfig) -> Self {
        SimdScorer {
            selection,
            table: None,
            table_builds: 0,
        }
    }

    /// Whether the flattened parameter arena has been built.
    pub fn is_warm(&self) -> bool {
        self.table.is_some()
    }

    /// How many times the parameter arena has been (re)built — 1 for a whole
    /// batch is the amortisation working; one per utterance means the model
    /// cache is being invalidated.
    pub fn table_builds(&self) -> usize {
        self.table_builds
    }

    fn score_one(table: &FlattenedModel, senone: usize, x: &[f32], best_only: bool) -> LogProb {
        let (first, count) = table.components[senone];
        let dim = table.dim;
        let main = dim - dim % LANES;
        let mut acc = LogProb::zero();
        for k in first..first + count {
            let mean = &table.means[k * dim..k * dim + dim];
            let prec = &table.precisions[k * dim..k * dim + dim];
            let mut lanes = [0.0f32; LANES];
            for ((xs, ms), ps) in x[..main]
                .chunks_exact(LANES)
                .zip(mean[..main].chunks_exact(LANES))
                .zip(prec[..main].chunks_exact(LANES))
            {
                for l in 0..LANES {
                    let d = xs[l] - ms[l];
                    lanes[l] += d * d * ps[l];
                }
            }
            let tail: f32 = x[main..]
                .iter()
                .zip(&mean[main..])
                .zip(&prec[main..])
                .map(|((&xi, &mi), &pi)| {
                    let d = xi - mi;
                    d * d * pi
                })
                .sum();
            let component = LogProb::new(table.consts[k] + lanes.iter().sum::<f32>() + tail);
            acc = if best_only {
                acc.max(component)
            } else {
                acc.log_add(component)
            };
        }
        acc
    }
}

impl SenoneScorer for SimdScorer {
    fn name(&self) -> &'static str {
        "simd"
    }

    fn begin_frame(&mut self, _feature: &[f32]) {}

    fn score_senones(
        &mut self,
        model: &AcousticModel,
        active: &[SenoneId],
        feature: &[f32],
    ) -> Result<Vec<(SenoneId, LogProb)>, DecodeError> {
        let mut out = Vec::with_capacity(active.len());
        self.score_senones_into(model, active, feature, &mut out)?;
        Ok(out)
    }

    fn score_senones_into(
        &mut self,
        model: &AcousticModel,
        active: &[SenoneId],
        feature: &[f32],
        out: &mut Vec<(SenoneId, LogProb)>,
    ) -> Result<(), DecodeError> {
        if !self.table.as_ref().is_some_and(|t| t.matches(model)) {
            self.table = Some(FlattenedModel::build(model));
            self.table_builds += 1;
        }
        let table = self.table.as_ref().expect("table built above");
        let x = truncated(&self.selection, feature);
        let best_only = self.selection.best_component_only;
        out.reserve(active.len());
        for &id in active {
            if id.index() >= table.num_senones {
                return Err(AcousticError::UnknownId(format!("senone {}", id.0)).into());
            }
            out.push((id, Self::score_one(table, id.index(), &x, best_only)));
        }
        Ok(())
    }

    fn step_hmm(
        &mut self,
        prev_scores: &[LogProb],
        entry_score: LogProb,
        transitions: &TransitionMatrix,
        senone_scores: &[LogProb],
    ) -> Result<HmmStepResult, DecodeError> {
        software_step_hmm(prev_scores, entry_score, transitions, senone_scores)
    }

    fn finish_utterance(&mut self) -> Option<UtteranceReport> {
        None
    }

    fn reset(&mut self) {}
}

/// Default score for a senone that was not scored this frame — matches the
/// search's historical "effectively pruned" constant.
const UNSCORED: f32 = -1.0e6;

/// A generation-stamped dense senone-score table.
///
/// Replaces the per-frame `HashMap<SenoneId, LogProb>` on the decode hot
/// path: one allocation sized to the senone inventory, O(1) per-frame clear
/// by bumping an epoch counter, and O(1) lookups by senone index.  Entries
/// stamped with an older epoch fall back to the current frame's floor score,
/// which is how Conditional Down Sampling's "poor but finite" score for
/// never-cached senones is realised without touching the table.
#[derive(Debug, Default)]
pub struct SenoneScoreArena {
    scores: Vec<LogProb>,
    stamps: Vec<u64>,
    epoch: u64,
    stamped: usize,
    best: LogProb,
    floor: LogProb,
}

impl SenoneScoreArena {
    /// Creates an empty arena; it grows to the senone inventory on first use.
    pub fn new() -> Self {
        SenoneScoreArena {
            scores: Vec::new(),
            stamps: Vec::new(),
            epoch: 1,
            stamped: 0,
            best: LogProb::zero(),
            floor: LogProb::new(UNSCORED),
        }
    }

    /// Starts a freshly scored frame: invalidates all previous entries in
    /// O(1) and resets the floor for unscored senones.
    pub fn begin_scored_frame(&mut self, inventory: usize) {
        if self.scores.len() < inventory {
            self.scores.resize(inventory, LogProb::zero());
            self.stamps.resize(inventory, 0);
        }
        self.epoch += 1;
        self.stamped = 0;
        self.best = LogProb::zero();
        self.floor = LogProb::new(UNSCORED);
    }

    /// Keeps the previous frame's entries (a CDS skip frame) but serves
    /// `floor` for senones that were never cached.
    pub fn reuse_with_floor(&mut self, floor: LogProb) {
        self.floor = floor;
    }

    /// Records one senone's score for the current frame.
    pub fn set(&mut self, id: SenoneId, score: LogProb) {
        let i = id.index();
        if i >= self.scores.len() {
            self.scores.resize(i + 1, LogProb::zero());
            self.stamps.resize(i + 1, 0);
        }
        if self.stamps[i] != self.epoch {
            self.stamps[i] = self.epoch;
            self.stamped += 1;
        }
        self.scores[i] = score;
        self.best = self.best.max(score);
    }

    /// The senone's score this frame, or the frame's floor if it was not
    /// scored (and, on CDS skip frames, never cached).
    pub fn get(&self, id: SenoneId) -> LogProb {
        match self.stamps.get(id.index()) {
            Some(&stamp) if stamp == self.epoch => self.scores[id.index()],
            _ => self.floor,
        }
    }

    /// Whether any senone is cached for the current epoch.
    pub fn has_scores(&self) -> bool {
        self.stamped > 0
    }

    /// Number of senones cached for the current epoch.
    pub fn len(&self) -> usize {
        self.stamped
    }

    /// Whether the arena holds no current-epoch scores.
    pub fn is_empty(&self) -> bool {
        self.stamped == 0
    }

    /// Best score cached for the current epoch.
    pub fn best(&self) -> LogProb {
        self.best
    }

    /// Invalidates everything (end of utterance).
    pub fn clear(&mut self) {
        self.epoch += 1;
        self.stamped = 0;
        self.best = LogProb::zero();
        self.floor = LogProb::new(UNSCORED);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ScoringBackendKind;
    use asr_acoustic::AcousticModelConfig;

    fn model() -> AcousticModel {
        AcousticModel::untrained(AcousticModelConfig::tiny()).unwrap()
    }

    fn all_ids(m: &AcousticModel) -> Vec<SenoneId> {
        (0..m.senones().len() as u32).map(SenoneId).collect()
    }

    #[test]
    fn scorer_construction_and_names() {
        let sel = GmmSelectionConfig::default();
        let soc = ScoringBackendKind::Hardware(SocConfig::default())
            .build_scorer(&sel)
            .unwrap();
        assert_eq!(soc.name(), "soc");
        let sw = ScoringBackendKind::Software.build_scorer(&sel).unwrap();
        assert_eq!(sw.name(), "software");
        let simd = ScoringBackendKind::Simd.build_scorer(&sel).unwrap();
        assert_eq!(simd.name(), "simd");
        let bad = ScoringBackendKind::Hardware(SocConfig {
            num_structures: 0,
            ..SocConfig::default()
        });
        assert!(bad.build_scorer(&sel).is_err());
    }

    #[test]
    fn simd_matches_scalar_reference() {
        let m = model();
        let x: Vec<f32> = (0..m.feature_dim()).map(|d| 0.17 * d as f32).collect();
        let ids = all_ids(&m);
        let mut scalar = SoftwareScorer::new(GmmSelectionConfig::default());
        let mut simd = SimdScorer::new(GmmSelectionConfig::default());
        assert!(!simd.is_warm());
        let a = scalar.score_senones(&m, &ids, &x).unwrap();
        let b = simd.score_senones(&m, &ids, &x).unwrap();
        assert!(simd.is_warm());
        for ((ia, sa), (ib, sb)) in a.iter().zip(&b) {
            assert_eq!(ia, ib);
            assert!(
                (sa.raw() - sb.raw()).abs() < 1e-2,
                "{ia:?}: scalar {} simd {}",
                sa.raw(),
                sb.raw()
            );
        }
    }

    #[test]
    fn simd_honours_gaussian_fast_gmm_layers() {
        let m = model();
        let x: Vec<f32> = (0..m.feature_dim()).map(|d| 0.3 * d as f32).collect();
        let ids = all_ids(&m);
        let full = SimdScorer::new(GmmSelectionConfig::default())
            .score_senones(&m, &ids, &x)
            .unwrap();
        let best = SimdScorer::new(GmmSelectionConfig {
            best_component_only: true,
            ..GmmSelectionConfig::default()
        })
        .score_senones(&m, &ids, &x)
        .unwrap();
        let trunc = SimdScorer::new(GmmSelectionConfig {
            max_dims: Some(3),
            ..GmmSelectionConfig::default()
        })
        .score_senones(&m, &ids, &x)
        .unwrap();
        let trunc_scalar = SoftwareScorer::new(GmmSelectionConfig {
            max_dims: Some(3),
            ..GmmSelectionConfig::default()
        })
        .score_senones(&m, &ids, &x)
        .unwrap();
        for (k, (id, s)) in full.iter().enumerate() {
            // Best-component is a lower bound on the full mixture.
            assert!(best[k].1.raw() <= s.raw() + 1e-4, "{id:?}");
            // Truncation matches the scalar truncation semantics.
            assert!((trunc[k].1.raw() - trunc_scalar[k].1.raw()).abs() < 1e-2);
        }
    }

    #[test]
    fn simd_arena_survives_utterance_reset_and_tracks_the_model() {
        let m = model();
        let x = vec![0.1f32; m.feature_dim()];
        let mut simd = SimdScorer::new(GmmSelectionConfig::default());
        simd.score_senones(&m, &all_ids(&m), &x).unwrap();
        assert!(simd.is_warm());
        assert_eq!(simd.table_builds(), 1);
        assert!(simd.finish_utterance().is_none());
        simd.reset();
        assert!(
            simd.is_warm(),
            "the model arena must survive the batch seam"
        );
        // Repeated scoring of the same model reuses the arena: the
        // address+shape+parameter spot-check must confirm the warm hit.
        simd.score_senones(&m, &all_ids(&m), &x).unwrap();
        simd.score_senones(&m, &all_ids(&m), &x).unwrap();
        assert_eq!(simd.table_builds(), 1, "warm hits must not rebuild");
        // A different model (different address/shape) forces a rebuild.
        let m2 = AcousticModel::untrained(AcousticModelConfig {
            num_phones: 4,
            num_senones: 12,
            ..AcousticModelConfig::tiny()
        })
        .unwrap();
        let scores = simd
            .score_senones(&m2, &all_ids(&m2), &vec![0.1f32; m2.feature_dim()])
            .unwrap();
        assert_eq!(scores.len(), m2.senones().len());
        assert_eq!(simd.table_builds(), 2);
    }

    #[test]
    fn simd_rebuilds_for_a_same_shape_model_with_different_parameters() {
        // Same senone count, same dimension, different Gaussians (the
        // quantised copy): the cache must serve the *new* model's parameters,
        // never the old ones — the hazard a pointer-only cache key has when
        // an allocation is recycled (the spot-check in
        // FlattenedModel::matches guards the recycled-address case).
        let a = model();
        let b = asr_acoustic::quantize_model(&a, asr_float::MantissaWidth::BITS_12).unwrap();
        let x: Vec<f32> = (0..a.feature_dim()).map(|d| 0.21 * d as f32).collect();
        let ids = all_ids(&a);
        let mut warm = SimdScorer::new(GmmSelectionConfig::default());
        warm.score_senones(&a, &ids, &x).unwrap();
        let via_warm_scorer = warm.score_senones(&b, &ids, &x).unwrap();
        assert_eq!(warm.table_builds(), 2, "same-shape model must rebuild");
        let via_fresh_scorer = SimdScorer::new(GmmSelectionConfig::default())
            .score_senones(&b, &ids, &x)
            .unwrap();
        for ((ia, sa), (ib, sb)) in via_warm_scorer.iter().zip(&via_fresh_scorer) {
            assert_eq!(ia, ib);
            assert_eq!(sa.raw(), sb.raw(), "stale parameters served for {ia:?}");
        }
    }

    #[test]
    fn unknown_senones_are_typed_errors_not_panics() {
        let m = model();
        let x = vec![0.0f32; m.feature_dim()];
        let bad = [SenoneId(9_999)];
        let mut scalar = SoftwareScorer::new(GmmSelectionConfig::default());
        let mut simd = SimdScorer::new(GmmSelectionConfig::default());
        assert!(matches!(
            scalar.score_senones(&m, &bad, &x),
            Err(DecodeError::Acoustic(_))
        ));
        assert!(matches!(
            simd.score_senones(&m, &bad, &x),
            Err(DecodeError::Acoustic(_))
        ));
    }

    #[test]
    fn software_step_hmm_validates_shapes() {
        let m = model();
        let t = m.transitions();
        let n = t.num_states();
        let prev = vec![LogProb::new(-2.0); n];
        let obs = vec![LogProb::new(-1.0); n];
        let step = software_step_hmm(&prev, LogProb::zero(), t, &obs).unwrap();
        assert_eq!(step.scores.len(), n);
        assert!(software_step_hmm(&prev[..n - 1], LogProb::zero(), t, &obs).is_err());
    }

    #[test]
    fn arena_epochs_and_floors() {
        let mut arena = SenoneScoreArena::new();
        assert!(arena.is_empty());
        assert_eq!(arena.get(SenoneId(3)).raw(), UNSCORED);

        arena.begin_scored_frame(8);
        arena.set(SenoneId(2), LogProb::new(-1.5));
        arena.set(SenoneId(5), LogProb::new(-0.5));
        assert_eq!(arena.len(), 2);
        assert!(arena.has_scores());
        assert_eq!(arena.get(SenoneId(2)).raw(), -1.5);
        assert_eq!(arena.best().raw(), -0.5);
        assert_eq!(arena.get(SenoneId(4)).raw(), UNSCORED);

        // A CDS skip frame keeps the cache but floors unscored senones.
        arena.reuse_with_floor(LogProb::new(-20.5));
        assert_eq!(arena.get(SenoneId(5)).raw(), -0.5);
        assert_eq!(arena.get(SenoneId(4)).raw(), -20.5);

        // A new scored frame invalidates everything in O(1).
        arena.begin_scored_frame(8);
        assert!(arena.is_empty());
        assert_eq!(arena.get(SenoneId(2)).raw(), UNSCORED);

        // Out-of-range ids grow the table rather than panicking.
        arena.set(SenoneId(40), LogProb::new(-3.0));
        assert_eq!(arena.get(SenoneId(40)).raw(), -3.0);
        arena.clear();
        assert!(arena.is_empty());
        assert_eq!(arena.get(SenoneId(40)).raw(), UNSCORED);
        // Re-stamping the same senone twice counts once.
        arena.begin_scored_frame(8);
        arena.set(SenoneId(1), LogProb::new(-2.0));
        arena.set(SenoneId(1), LogProb::new(-1.0));
        assert_eq!(arena.len(), 1);
        assert_eq!(arena.get(SenoneId(1)).raw(), -1.0);
    }
}
