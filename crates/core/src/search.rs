//! The word-decode stage: a token-passing Viterbi search over the lexical
//! prefix tree.
//!
//! Each active lexical-tree node holds one triphone HMM instance.  Every
//! frame the search:
//!
//! 1. collects the senones of all active instances — the
//!    "Phones for evaluation" feedback to the phone-decode stage;
//! 2. has the phone-decode stage score exactly that set;
//! 3. advances every instance with the Viterbi unit;
//! 4. propagates good exit scores into child nodes (word-internal
//!    transitions) and into the word lattice at word-end nodes;
//! 5. starts new words from the tree root after each word end,
//!    applying the language model and the word-insertion penalty;
//! 6. prunes instances outside the beam and beyond the instance cap.

use crate::config::DecoderConfig;
use crate::lattice::{WordLattice, WordLatticeEntry};
use crate::phone_decode::PhoneDecoder;
use crate::stats::{DecodeStats, FrameStats};
use crate::DecodeError;
use asr_acoustic::{AcousticModel, PhoneId, SenoneId, Triphone};
use asr_float::LogProb;
use asr_lexicon::{Dictionary, LexNodeId, LexTree, NGramModel, WordId};
use std::collections::HashMap;

/// The static search network: the lexical tree with each node resolved to a
/// senone sequence (one per HMM state) of the acoustic model.
#[derive(Debug, Clone)]
pub struct SearchNetwork {
    lextree: LexTree,
    /// Senone sequence per lexical-tree node (index = node id; root empty).
    node_senones: Vec<Vec<SenoneId>>,
}

impl SearchNetwork {
    /// Builds the network from a dictionary and an acoustic model.
    ///
    /// Triphone contexts are resolved with the left context taken from the
    /// parent node's phone (silence at word starts) and the acoustic model's
    /// context-independent fallback for unseen contexts.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::InconsistentModels`] if a dictionary phone has
    /// no acoustic model at all.
    pub fn build(model: &AcousticModel, dictionary: &Dictionary) -> Result<Self, DecodeError> {
        let lextree = LexTree::build(dictionary);
        let silence = PhoneId(0);
        let mut node_senones = vec![Vec::new(); lextree.num_nodes()];
        // Breadth-first walk from the root resolving each node.
        let mut queue = vec![LexNodeId::ROOT];
        while let Some(node) = queue.pop() {
            let parent_phone = lextree.phone(node).unwrap_or(silence);
            for (phone, child) in lextree.successors(node) {
                let successors = lextree.successors(child);
                let right = successors.first().map(|&(p, _)| p).unwrap_or(silence);
                let triphone = Triphone::new(phone, parent_phone, right);
                let id = model.triphones().resolve(&triphone).ok_or_else(|| {
                    DecodeError::InconsistentModels(format!(
                        "no acoustic model for phone {phone} (triphone {triphone})"
                    ))
                })?;
                let senones = model.triphones().senones(id)?.to_vec();
                node_senones[child.index()] = senones;
                queue.push(child);
            }
        }
        Ok(SearchNetwork {
            lextree,
            node_senones,
        })
    }

    /// The lexical tree.
    pub fn lextree(&self) -> &LexTree {
        &self.lextree
    }

    /// Senones of a node (empty for the root).
    pub fn senones(&self, node: LexNodeId) -> &[SenoneId] {
        &self.node_senones[node.index()]
    }

    /// Total number of HMM instances the network can instantiate.
    pub fn num_instances(&self) -> usize {
        self.lextree.num_nodes().saturating_sub(1)
    }
}

/// A live HMM instance at one lexical-tree node.
#[derive(Debug, Clone)]
struct Token {
    scores: Vec<LogProb>,
    history: Vec<WordId>,
    word_start_frame: usize,
    score_at_word_start: LogProb,
}

impl Token {
    fn best(&self) -> LogProb {
        self.scores
            .iter()
            .fold(LogProb::zero(), |acc, &s| acc.max(s))
    }
}

/// A token about to enter a node at the next frame.
#[derive(Debug, Clone)]
struct PendingEntry {
    entry_score: LogProb,
    history: Vec<WordId>,
    word_start_frame: usize,
    score_at_word_start: LogProb,
}

/// Output of decoding one utterance.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// Best word sequence found by the on-the-fly search (token history).
    pub best_token_words: Vec<WordId>,
    /// Combined acoustic + LM score of [`SearchOutcome::best_token_words`]
    /// ([`LogProb::zero`] when no word end was ever reached).
    pub best_token_score: LogProb,
    /// The word lattice handed to the global best path search.
    pub lattice: WordLattice,
    /// Per-frame statistics.
    pub stats: DecodeStats,
}

/// The mutable state of one in-flight utterance: the active/pending token
/// sets, the growing word lattice, the per-frame statistics and the best
/// completed hypothesis so far.
///
/// Created by [`TokenPassingSearch::begin`], advanced one frame at a time by
/// [`TokenPassingSearch::step`], and closed by [`TokenPassingSearch::finish`].
/// [`TokenPassingSearch::decode`] is exactly this loop over a full feature
/// slice, so a streaming caller feeding frames incrementally produces results
/// identical to the offline path by construction.
#[derive(Debug, Clone)]
pub struct SearchState {
    active: HashMap<LexNodeId, Token>,
    pending: HashMap<LexNodeId, PendingEntry>,
    lattice: WordLattice,
    stats: DecodeStats,
    /// Best completed (word-end) hypothesis: (score, history, end frame).
    best_final: Option<(LogProb, Vec<WordId>, usize)>,
    /// Frames consumed so far.
    frames: usize,
}

impl SearchState {
    /// Number of frames stepped so far.
    pub fn frames(&self) -> usize {
        self.frames
    }

    /// The best completed word sequence so far (empty until the first word
    /// end survives the word beam) — the live partial hypothesis a streaming
    /// caller can surface between chunks.
    pub fn best_words(&self) -> &[WordId] {
        self.best_final
            .as_ref()
            .map(|(_, h, _)| h.as_slice())
            .unwrap_or(&[])
    }
}

/// The token-passing search engine.
#[derive(Debug)]
pub struct TokenPassingSearch<'a> {
    model: &'a AcousticModel,
    network: &'a SearchNetwork,
    lm: &'a NGramModel,
    config: &'a DecoderConfig,
}

impl<'a> TokenPassingSearch<'a> {
    /// Creates a search engine over prebuilt knowledge sources.
    pub fn new(
        model: &'a AcousticModel,
        network: &'a SearchNetwork,
        lm: &'a NGramModel,
        config: &'a DecoderConfig,
    ) -> Self {
        TokenPassingSearch {
            model,
            network,
            lm,
            config,
        }
    }

    fn lm_score(&self, history: &[WordId], word: WordId) -> LogProb {
        let tail: Vec<WordId> = history.iter().rev().take(2).rev().copied().collect();
        self.lm.log_prob(&tail, word).powf(self.config.lm_weight)
            + LogProb::new(self.config.word_insertion_penalty)
    }

    /// Starts a fresh utterance: an empty token set with word starts pending
    /// at frame 0.
    pub fn begin(&self) -> SearchState {
        let mut pending = HashMap::new();
        for (_, node) in self.network.lextree().successors(LexNodeId::ROOT) {
            pending.insert(
                node,
                PendingEntry {
                    entry_score: LogProb::ONE,
                    history: Vec::new(),
                    word_start_frame: 0,
                    score_at_word_start: LogProb::ONE,
                },
            );
        }
        SearchState {
            active: HashMap::new(),
            pending,
            lattice: WordLattice::new(0),
            stats: DecodeStats::new(),
            best_final: None,
            frames: 0,
        }
    }

    /// Advances the search by one frame, driving the phone-decode stage for
    /// senone scores and HMM updates.  The caller never has to announce how
    /// many frames are coming: word starts and word-internal transitions are
    /// always staged as pending entries, and [`TokenPassingSearch::finish`]
    /// simply drops the entries of the frame that never arrived — so stepping
    /// frame by frame is bit-identical to the offline loop.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::DimensionMismatch`] if the feature vector has
    /// the wrong dimension, or propagates backend errors.
    pub fn step(
        &self,
        state: &mut SearchState,
        phone_decoder: &mut PhoneDecoder,
        feature: &[f32],
    ) -> Result<(), DecodeError> {
        let dim = self.model.feature_dim();
        if feature.len() != dim {
            return Err(DecodeError::DimensionMismatch {
                expected: dim,
                got: feature.len(),
            });
        }
        let t = state.frames;
        let tree = self.network.lextree();
        let inventory_size = self.model.senones().len();
        let states = self.model.config().topology.num_states();
        let transitions = self.model.transitions();

        phone_decoder.begin_frame(feature);

        // Merge pending entries into the active set.
        let mut entry_map: HashMap<LexNodeId, PendingEntry> = HashMap::new();
        for (node, entry) in state.pending.drain() {
            match state.active.get_mut(&node) {
                Some(token) => {
                    // The entering path may take over the instance's word
                    // bookkeeping if it is stronger than everything inside.
                    if entry.entry_score.raw() > token.best().raw() {
                        token.history = entry.history.clone();
                        token.word_start_frame = entry.word_start_frame;
                        token.score_at_word_start = entry.score_at_word_start;
                    }
                    entry_map.insert(node, entry);
                }
                None => {
                    state.active.insert(
                        node,
                        Token {
                            scores: vec![LogProb::zero(); states],
                            history: entry.history.clone(),
                            word_start_frame: entry.word_start_frame,
                            score_at_word_start: entry.score_at_word_start,
                        },
                    );
                    entry_map.insert(node, entry);
                }
            }
        }

        // Active senone set — the feedback to the phone decode stage.
        let mut active_senones: Vec<SenoneId> = state
            .active
            .keys()
            .flat_map(|&node| self.network.senones(node).iter().copied())
            .collect();
        active_senones.sort_unstable();
        active_senones.dedup();
        let requested = if self.config.gmm_selection.senone_feedback {
            active_senones.clone()
        } else {
            // Feedback disabled (for the E4 ablation): score everything.
            (0..inventory_size as u32).map(SenoneId).collect()
        };
        let cds_skipped = phone_decoder.score_frame(self.model, &requested, feature)?;

        // Advance every active instance, reading scores straight out of
        // the phone decoder's senone-score arena (no per-frame map).
        let mut frame_best = LogProb::zero();
        let mut exits: Vec<(LexNodeId, LogProb)> = Vec::new();
        let node_ids: Vec<LexNodeId> = state.active.keys().copied().collect();
        for node in node_ids {
            let obs: Vec<LogProb> = self
                .network
                .senones(node)
                .iter()
                .map(|&id| phone_decoder.score_of(id))
                .collect();
            let entry_score = entry_map
                .get(&node)
                .map(|e| e.entry_score)
                .unwrap_or_else(LogProb::zero);
            let token = state.active.get_mut(&node).expect("node is active");
            let step = phone_decoder.step_hmm(&token.scores, entry_score, transitions, &obs)?;
            token.scores = step.scores;
            let best = token.best();
            if best.raw() > frame_best.raw() {
                frame_best = best;
            }
            if !step.exit_score.is_zero() {
                exits.push((node, step.exit_score));
            }
        }

        // Handle exits: word ends and word-internal propagation.  Entries for
        // the next frame are always staged; if the utterance ends here they
        // are discarded by `finish`, which is what the offline loop's
        // "is there a next frame" guard amounted to.
        let word_beam_floor = frame_best + LogProb::new(-self.config.word_beam);
        let mut word_ends_this_frame = 0usize;
        for (node, exit_score) in exits {
            if exit_score.raw() < word_beam_floor.raw() {
                continue;
            }
            let token = state.active.get(&node).expect("node is active").clone();
            // Word ends at this node.
            for &word in tree.words_at(node) {
                word_ends_this_frame += 1;
                let acoustic = exit_score - token.score_at_word_start;
                state.lattice.push(WordLatticeEntry {
                    word,
                    start_frame: token.word_start_frame,
                    end_frame: t,
                    acoustic_score: acoustic,
                });
                let with_lm = exit_score + self.lm_score(&token.history, word);
                let mut new_history = token.history.clone();
                new_history.push(word);
                let better_final = state
                    .best_final
                    .as_ref()
                    .map(|(s, _, e)| t > *e || (t == *e && with_lm.raw() > s.raw()))
                    .unwrap_or(true);
                if better_final {
                    state.best_final = Some((with_lm, new_history.clone(), t));
                }
                // Start new words at the next frame.
                for (_, root_child) in tree.successors(LexNodeId::ROOT) {
                    let candidate = PendingEntry {
                        entry_score: with_lm,
                        history: new_history.clone(),
                        word_start_frame: t + 1,
                        score_at_word_start: with_lm,
                    };
                    match state.pending.get(&root_child) {
                        Some(existing)
                            if existing.entry_score.raw() >= candidate.entry_score.raw() => {}
                        _ => {
                            state.pending.insert(root_child, candidate);
                        }
                    }
                }
            }
            // Word-internal transition into child nodes.
            for (_, child) in tree.successors(node) {
                let candidate = PendingEntry {
                    entry_score: exit_score,
                    history: token.history.clone(),
                    word_start_frame: token.word_start_frame,
                    score_at_word_start: token.score_at_word_start,
                };
                match state.pending.get(&child) {
                    Some(existing) if existing.entry_score.raw() >= candidate.entry_score.raw() => {
                    }
                    _ => {
                        state.pending.insert(child, candidate);
                    }
                }
            }
        }

        // Beam pruning and the instance cap.
        let beam_floor = frame_best + LogProb::new(-self.config.beam);
        let before = state.active.len();
        state
            .active
            .retain(|_, token| token.best().raw() >= beam_floor.raw());
        if state.active.len() > self.config.max_active_hmms {
            let mut scored: Vec<(LexNodeId, LogProb)> = state
                .active
                .iter()
                .map(|(&node, token)| (node, token.best()))
                .collect();
            scored.sort_by(|a, b| b.1.total_cmp(&a.1));
            let keep: std::collections::HashSet<LexNodeId> = scored
                .iter()
                .take(self.config.max_active_hmms)
                .map(|&(n, _)| n)
                .collect();
            state.active.retain(|node, _| keep.contains(node));
        }
        let pruned = before.saturating_sub(state.active.len());

        state.stats.push(FrameStats {
            frame: t,
            senones_scored: if cds_skipped { 0 } else { requested.len() },
            senone_inventory: inventory_size,
            active_hmms: state.active.len(),
            pruned_hmms: pruned,
            word_ends: word_ends_this_frame,
            cds_skipped,
        });
        // Word-decode dictionary lookups go over the DMA.
        phone_decoder.dma_fetch((word_ends_this_frame * 64) as u64);
        phone_decoder.end_frame(state.active.len(), state.lattice.len());
        state.frames = t + 1;
        Ok(())
    }

    /// Closes the utterance: drops the pending entries of the frame that
    /// never arrived and packages the outcome.
    pub fn finish(&self, mut state: SearchState) -> SearchOutcome {
        state.lattice.set_num_frames(state.frames);
        let (best_token_score, best_token_words) = state
            .best_final
            .map(|(s, h, _)| (s, h))
            .unwrap_or((LogProb::zero(), Vec::new()));
        SearchOutcome {
            best_token_words,
            best_token_score,
            lattice: state.lattice,
            stats: state.stats,
        }
    }

    /// Decodes one utterance of feature vectors, driving the phone-decode
    /// stage for senone scores and HMM updates — [`TokenPassingSearch::begin`]
    /// / [`TokenPassingSearch::step`] / [`TokenPassingSearch::finish`] rolled
    /// into one loop over the whole feature slice.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::DimensionMismatch`] if a feature vector has the
    /// wrong dimension, or propagates backend errors.
    pub fn decode(
        &self,
        features: &[Vec<f32>],
        phone_decoder: &mut PhoneDecoder,
    ) -> Result<SearchOutcome, DecodeError> {
        let dim = self.model.feature_dim();
        for f in features {
            if f.len() != dim {
                return Err(DecodeError::DimensionMismatch {
                    expected: dim,
                    got: f.len(),
                });
            }
        }
        let mut state = self.begin();
        for feature in features {
            self.step(&mut state, phone_decoder, feature)?;
        }
        Ok(self.finish(state))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{GmmSelectionConfig, ScoringBackendKind};
    use asr_acoustic::{
        AcousticModel, AcousticModelConfig, DiagGaussian, GaussianMixture, HmmTopology, SenonePool,
        TransitionMatrix, TriphoneInventory,
    };
    use asr_lexicon::{NGramModel, Pronunciation};

    const DIM: usize = 5;
    const NUM_PHONES: usize = 6;

    /// Builds a tiny, well-separated acoustic model: phone p, state s has a
    /// single Gaussian with mean (10p + 3s) in every dimension.
    fn tiny_model() -> AcousticModel {
        let states = 3;
        let mixtures: Vec<GaussianMixture> = (0..NUM_PHONES * states)
            .map(|i| {
                let phone = i / states;
                let state = i % states;
                let mean = vec![(10 * phone + 3 * state) as f32; DIM];
                GaussianMixture::new(vec![(
                    1.0,
                    DiagGaussian::new(mean, vec![1.0; DIM]).unwrap(),
                )])
                .unwrap()
            })
            .collect();
        let pool = SenonePool::new(mixtures).unwrap();
        let mut inventory = TriphoneInventory::new(HmmTopology::Three);
        for p in 0..NUM_PHONES {
            let senones: Vec<SenoneId> = (0..states)
                .map(|s| SenoneId((p * states + s) as u32))
                .collect();
            inventory
                .add(Triphone::context_independent(PhoneId(p as u16)), senones)
                .unwrap();
        }
        let transitions = TransitionMatrix::bakis(HmmTopology::Three, 0.5).unwrap();
        let config = AcousticModelConfig {
            num_senones: NUM_PHONES * states,
            num_components: 1,
            feature_dim: DIM,
            topology: HmmTopology::Three,
            num_phones: NUM_PHONES,
            self_loop_prob: 0.5,
        };
        AcousticModel::new(config, pool, inventory, transitions).unwrap()
    }

    fn tiny_dictionary() -> Dictionary {
        let mut d = Dictionary::new();
        let p = |ids: &[u16]| Pronunciation::new(ids.iter().map(|&i| PhoneId(i)).collect());
        d.add_word("alpha", p(&[1, 2])).unwrap(); // word 0
        d.add_word("bravo", p(&[3, 4])).unwrap(); // word 1
        d.add_word("mix", p(&[1, 4])).unwrap(); // word 2
        d
    }

    /// Synthesises feature frames for a word sequence: each phone contributes
    /// 3 states × `frames_per_state` frames of that state's Gaussian mean.
    fn synth_features(dict: &Dictionary, words: &[&str], frames_per_state: usize) -> Vec<Vec<f32>> {
        let mut frames = Vec::new();
        for w in words {
            let id = dict.id_of(w).unwrap();
            for &phone in dict.pronunciation(id).unwrap().phones() {
                for state in 0..3 {
                    let mean = vec![(10 * phone.index() + 3 * state) as f32; DIM];
                    for _ in 0..frames_per_state {
                        frames.push(mean.clone());
                    }
                }
            }
        }
        frames
    }

    fn decode_with(
        backend_kind: &ScoringBackendKind,
        words: &[&str],
    ) -> (SearchOutcome, Vec<WordId>, Dictionary) {
        let model = tiny_model();
        let dict = tiny_dictionary();
        let network = SearchNetwork::build(&model, &dict).unwrap();
        let lm = NGramModel::uniform(dict.len()).unwrap();
        let config = DecoderConfig {
            backend: backend_kind.clone(),
            ..DecoderConfig::default()
        };
        let features = synth_features(&dict, words, 3);
        let mut phone_decoder = PhoneDecoder::new(
            backend_kind
                .build_scorer(&GmmSelectionConfig::default())
                .unwrap(),
            GmmSelectionConfig::default(),
        );
        let search = TokenPassingSearch::new(&model, &network, &lm, &config);
        let outcome = search.decode(&features, &mut phone_decoder).unwrap();
        let expected: Vec<WordId> = words.iter().map(|w| dict.id_of(w).unwrap()).collect();
        (outcome, expected, dict)
    }

    #[test]
    fn network_build_resolves_all_nodes() {
        let model = tiny_model();
        let dict = tiny_dictionary();
        let network = SearchNetwork::build(&model, &dict).unwrap();
        assert_eq!(network.num_instances(), network.lextree().num_nodes() - 1);
        for node in 1..network.lextree().num_nodes() {
            assert_eq!(network.senones(LexNodeId(node as u32)).len(), 3);
        }
        assert!(network.senones(LexNodeId::ROOT).is_empty());
    }

    #[test]
    fn network_build_fails_for_unknown_phone() {
        let model = tiny_model();
        let mut dict = tiny_dictionary();
        dict.add_word(
            "zz",
            Pronunciation::new(vec![PhoneId(40)]), // no acoustic model
        )
        .unwrap();
        assert!(matches!(
            SearchNetwork::build(&model, &dict),
            Err(DecodeError::InconsistentModels(_))
        ));
    }

    #[test]
    fn decodes_single_word_software() {
        let (outcome, expected, _) = decode_with(&ScoringBackendKind::Software, &["alpha"]);
        assert_eq!(outcome.best_token_words, expected);
        assert!(!outcome.lattice.is_empty());
        assert_eq!(outcome.stats.num_frames(), 18);
    }

    #[test]
    fn decodes_two_words_software() {
        let (outcome, expected, _) =
            decode_with(&ScoringBackendKind::Software, &["alpha", "bravo"]);
        assert_eq!(outcome.best_token_words, expected);
        // The lattice's best path under the LM agrees.
        let lm = NGramModel::uniform(3).unwrap();
        let path = outcome.lattice.best_path(&lm, 1.0, -1.0, 3);
        assert_eq!(path, expected);
    }

    #[test]
    fn decodes_with_hardware_backend() {
        let kind = ScoringBackendKind::Hardware(asr_hw::SocConfig::default());
        let (outcome, expected, _) = decode_with(&kind, &["bravo", "alpha"]);
        assert_eq!(outcome.best_token_words, expected);
    }

    #[test]
    fn decodes_with_simd_backend() {
        let (outcome, expected, _) = decode_with(&ScoringBackendKind::Simd, &["alpha", "bravo"]);
        assert_eq!(outcome.best_token_words, expected);
    }

    #[test]
    fn feedback_keeps_active_senones_sparse() {
        let (outcome, _, _) =
            decode_with(&ScoringBackendKind::Software, &["alpha", "bravo", "mix"]);
        // Only a fraction of the 18-senone inventory is scored per frame.
        let frac = outcome.stats.mean_active_senone_fraction();
        assert!(frac < 0.75, "{frac}");
        assert!(frac > 0.0);
        assert!(outcome.stats.peak_active_senone_fraction() <= 1.0);
    }

    #[test]
    fn rejects_wrong_feature_dimension() {
        let model = tiny_model();
        let dict = tiny_dictionary();
        let network = SearchNetwork::build(&model, &dict).unwrap();
        let lm = NGramModel::uniform(dict.len()).unwrap();
        let config = DecoderConfig::software();
        let search = TokenPassingSearch::new(&model, &network, &lm, &config);
        let mut pd = PhoneDecoder::new(
            ScoringBackendKind::Software
                .build_scorer(&GmmSelectionConfig::default())
                .unwrap(),
            GmmSelectionConfig::default(),
        );
        let bad = vec![vec![0.0f32; 2]];
        assert!(matches!(
            search.decode(&bad, &mut pd),
            Err(DecodeError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn empty_utterance_gives_empty_result() {
        let model = tiny_model();
        let dict = tiny_dictionary();
        let network = SearchNetwork::build(&model, &dict).unwrap();
        let lm = NGramModel::uniform(dict.len()).unwrap();
        let config = DecoderConfig::software();
        let search = TokenPassingSearch::new(&model, &network, &lm, &config);
        let mut pd = PhoneDecoder::new(
            ScoringBackendKind::Software
                .build_scorer(&GmmSelectionConfig::default())
                .unwrap(),
            GmmSelectionConfig::default(),
        );
        let outcome = search.decode(&[], &mut pd).unwrap();
        assert!(outcome.best_token_words.is_empty());
        assert!(outcome.lattice.is_empty());
        assert_eq!(outcome.stats.num_frames(), 0);
    }
}
