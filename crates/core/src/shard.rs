//! The sharded multi-SoC scorer: one [`SenoneScorer`] built from several.
//!
//! The paper scales senone scoring *up* by adding accelerator structures
//! inside one SoC; ASRPU-style designs scale it *out* by partitioning the
//! active-senone set across parallel scoring units.  [`ShardedScorer`] is
//! that scale-out step behind the existing seam: it owns N inner scorers
//! (N [`SpeechSoc`] instances via [`SocScorer`], or any mix of backends),
//! splits every frame's active set into N contiguous slices, scores the
//! slices concurrently on scoped threads, and folds the per-shard hardware
//! reports with [`UtteranceReport::merge_parallel`] so the final report
//! describes one scaled-out machine over one audio stream rather than N
//! copies of the audio.
//!
//! Because every senone is scored by exactly one shard with the same
//! arithmetic the unsharded backend would use, sharding is *observationally
//! pure*: scores, hypotheses and decode statistics are identical to the
//! unsharded inner scorer (property-tested in `tests/shard.rs`), and only
//! wall-clock throughput and the hardware report's shape change.
//!
//! [`SpeechSoc`]: asr_hw::SpeechSoc
//! [`SocScorer`]: crate::SocScorer

use crate::scorer::{HmmStepResult, SenoneScorer};
use crate::DecodeError;
use asr_acoustic::{AcousticModel, SenoneId, TransitionMatrix};
use asr_float::LogProb;
use asr_hw::UtteranceReport;

/// Below this many active senones a frame is scored on the calling thread,
/// shard by shard, instead of spawning scoped threads.  The partition is the
/// same either way, so the choice is invisible in the results.
///
/// The threshold is tuned for the scorer sharding exists for — the
/// cycle-accurate SoC, where one senone costs tens of microseconds of
/// softfloat simulation, so even a feedback-pruned active set (~10–20
/// senones on the bench tasks) amortises the ~10 µs per-thread spawn cost
/// several times over.  Sharding a *cheap* backend (scalar/SIMD software, a
/// fraction of a microsecond per senone) parallelises below its break-even
/// point and wastes the spawn overhead; that combination is supported for
/// correctness (mixed-backend shards, property tests) but is not a
/// configuration the threshold optimises.
const MIN_PARALLEL_SENONES: usize = 8;

/// A scorer that shards the active-senone set across several inner scorers.
///
/// * [`SenoneScorer::score_senones`] splits the active set into
///   `num_shards()` contiguous slices and scores them concurrently (scoped
///   threads), concatenating the per-slice results in order.
/// * [`SenoneScorer::step_hmm`] dispatches HMM updates round-robin across the
///   shards, mirroring [`SpeechSoc`]'s internal structure scheduling.
/// * [`SenoneScorer::finish_utterance`] folds the shards' reports with
///   [`UtteranceReport::merge_parallel`].
/// * The host-side bookkeeping calls ([`SenoneScorer::dma_fetch`], the
///   software-stage charge of [`SenoneScorer::end_frame`]) go to shard 0
///   only, so host cycles and dictionary traffic are not multiplied by the
///   shard count; every shard still opens and closes its frame window.
///
/// Build one directly from live scorers with [`ShardedScorer::new`], or
/// declaratively through
/// [`ScoringBackendKind::Sharded`](crate::ScoringBackendKind::Sharded).
///
/// [`SpeechSoc`]: asr_hw::SpeechSoc
#[derive(Debug)]
pub struct ShardedScorer {
    shards: Vec<Box<dyn SenoneScorer>>,
    next_hmm_shard: usize,
    /// Whether to score shards on scoped threads.  Defaults to "only when the
    /// host has more than one CPU": on a single-core host the threads would
    /// serialise anyway and only the spawn overhead would remain.
    parallel: bool,
}

impl ShardedScorer {
    /// Builds the scorer around the given shards (any mix of backends).
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::InvalidConfig`] when `shards` is empty.
    pub fn new(shards: Vec<Box<dyn SenoneScorer>>) -> Result<Self, DecodeError> {
        if shards.is_empty() {
            return Err(DecodeError::InvalidConfig(
                "a sharded scorer needs at least one shard".into(),
            ));
        }
        let host_cpus = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Ok(ShardedScorer {
            parallel: shards.len() > 1 && host_cpus > 1,
            shards,
            next_hmm_shard: 0,
        })
    }

    /// Overrides the host-parallelism heuristic: `true` forces scoped-thread
    /// scoring even on a single-core host, `false` forces the sequential
    /// fan-out.  Results are identical either way; only wall-clock changes.
    pub fn with_parallelism(mut self, parallel: bool) -> Self {
        self.parallel = parallel && self.shards.len() > 1;
        self
    }

    /// Whether frames are scored on scoped threads (false on single-core
    /// hosts, where the shards still partition the work but score in turn).
    pub fn is_parallel(&self) -> bool {
        self.parallel
    }

    /// Number of inner scorers.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The inner scorers' names, in shard order.
    pub fn shard_names(&self) -> Vec<&'static str> {
        self.shards.iter().map(|s| s.name()).collect()
    }

    /// The slice length that partitions `active_len` senones into at most
    /// `num_shards` contiguous chunks.
    fn chunk_len(&self, active_len: usize) -> usize {
        active_len.div_ceil(self.shards.len()).max(1)
    }
}

impl SenoneScorer for ShardedScorer {
    fn name(&self) -> &'static str {
        "sharded"
    }

    fn begin_frame(&mut self, feature: &[f32]) {
        for shard in &mut self.shards {
            shard.begin_frame(feature);
        }
    }

    fn score_senones(
        &mut self,
        model: &AcousticModel,
        active: &[SenoneId],
        feature: &[f32],
    ) -> Result<Vec<(SenoneId, LogProb)>, DecodeError> {
        if self.shards.len() == 1 {
            return self.shards[0].score_senones(model, active, feature);
        }
        let chunk = self.chunk_len(active.len());
        if !self.parallel || active.len() < MIN_PARALLEL_SENONES {
            let mut out = Vec::with_capacity(active.len());
            for (shard, part) in self.shards.iter_mut().zip(active.chunks(chunk)) {
                out.extend(shard.score_senones(model, part, feature)?);
            }
            return Ok(out);
        }
        // One scoped thread per shard beyond the first: each shard scores its
        // contiguous slice of the active set against the shared (immutable)
        // model, while the calling thread scores shard 0's slice instead of
        // idling on the joins.  Reassembling in shard order keeps the
        // concatenated result in `active` order, which makes the sharded
        // output bit-identical to the unsharded one.
        let mut chunks = active.chunks(chunk);
        let first_part = chunks.next().unwrap_or(&[]);
        let (first_shard, rest_shards) = self
            .shards
            .split_first_mut()
            .expect("at least one shard exists");
        let (first_result, rest_results) = std::thread::scope(|scope| {
            let handles: Vec<_> = rest_shards
                .iter_mut()
                .zip(chunks)
                .map(|(shard, part)| scope.spawn(move || shard.score_senones(model, part, feature)))
                .collect();
            let first = first_shard.score_senones(model, first_part, feature);
            let rest: Vec<Result<Vec<(SenoneId, LogProb)>, DecodeError>> = handles
                .into_iter()
                .map(|h| h.join().expect("shard scoring thread panicked"))
                .collect();
            (first, rest)
        });
        let mut out = Vec::with_capacity(active.len());
        out.extend(first_result?);
        for r in rest_results {
            out.extend(r?);
        }
        Ok(out)
    }

    fn step_hmm(
        &mut self,
        prev_scores: &[LogProb],
        entry_score: LogProb,
        transitions: &TransitionMatrix,
        senone_scores: &[LogProb],
    ) -> Result<HmmStepResult, DecodeError> {
        let idx = self.next_hmm_shard;
        self.next_hmm_shard = (idx + 1) % self.shards.len();
        self.shards[idx].step_hmm(prev_scores, entry_score, transitions, senone_scores)
    }

    fn dma_fetch(&mut self, bytes: u64) {
        // Dictionary / LM traffic happens once, not once per shard.
        self.shards[0].dma_fetch(bytes);
    }

    fn end_frame(&mut self, active_triphones: usize, lattice_edges: usize) {
        // The host software stages run once; charge them to shard 0.  Every
        // other shard still closes its frame window (idle cycles, bandwidth).
        for (i, shard) in self.shards.iter_mut().enumerate() {
            if i == 0 {
                shard.end_frame(active_triphones, lattice_edges);
            } else {
                shard.end_frame(0, 0);
            }
        }
    }

    fn finish_utterance(&mut self) -> Option<UtteranceReport> {
        self.next_hmm_shard = 0;
        let mut merged: Option<UtteranceReport> = None;
        for shard in &mut self.shards {
            if let Some(report) = shard.finish_utterance() {
                merged = Some(match merged {
                    Some(acc) => acc.merge_parallel(&report),
                    None => report,
                });
            }
        }
        merged
    }

    fn reset(&mut self) {
        self.next_hmm_shard = 0;
        for shard in &mut self.shards {
            shard.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{GmmSelectionConfig, ScoringBackendKind};
    use crate::scorer::{SimdScorer, SocScorer, SoftwareScorer};
    use asr_acoustic::AcousticModelConfig;
    use asr_hw::SocConfig;

    fn model() -> AcousticModel {
        AcousticModel::untrained(AcousticModelConfig::tiny()).unwrap()
    }

    fn all_ids(m: &AcousticModel) -> Vec<SenoneId> {
        (0..m.senones().len() as u32).map(SenoneId).collect()
    }

    fn soc_shards(n: usize) -> ShardedScorer {
        let shards: Vec<Box<dyn SenoneScorer>> = (0..n)
            .map(|_| {
                Box::new(SocScorer::new(SocConfig::default()).unwrap()) as Box<dyn SenoneScorer>
            })
            .collect();
        ShardedScorer::new(shards).unwrap()
    }

    #[test]
    fn empty_shard_list_is_a_typed_error() {
        assert!(matches!(
            ShardedScorer::new(Vec::new()),
            Err(DecodeError::InvalidConfig(_))
        ));
    }

    #[test]
    fn sharded_scores_match_the_unsharded_inner_scorer() {
        let m = model();
        let ids = all_ids(&m);
        let x: Vec<f32> = (0..m.feature_dim()).map(|d| 0.23 * d as f32).collect();
        let mut reference = SocScorer::new(SocConfig::default()).unwrap();
        reference.begin_frame(&x);
        let want = reference.score_senones(&m, &ids, &x).unwrap();
        for n in [1usize, 2, 4] {
            let mut sharded = soc_shards(n);
            sharded.begin_frame(&x);
            let got = sharded.score_senones(&m, &ids, &x).unwrap();
            assert_eq!(got.len(), want.len());
            for ((ia, sa), (ib, sb)) in want.iter().zip(&got) {
                assert_eq!(ia, ib, "{n} shards must keep active order");
                assert_eq!(sa.raw(), sb.raw(), "{n} shards changed {ia:?}");
            }
        }
    }

    #[test]
    fn forced_parallel_and_sequential_paths_agree() {
        let m = model();
        let ids = all_ids(&m); // 24 senones: above the parallel threshold
        let x: Vec<f32> = (0..m.feature_dim()).map(|d| 0.31 * d as f32).collect();
        let mut parallel = soc_shards(4).with_parallelism(true);
        let mut sequential = soc_shards(4).with_parallelism(false);
        assert!(parallel.is_parallel());
        assert!(!sequential.is_parallel());
        parallel.begin_frame(&x);
        sequential.begin_frame(&x);
        let a = parallel.score_senones(&m, &ids, &x).unwrap();
        let b = sequential.score_senones(&m, &ids, &x).unwrap();
        for ((ia, sa), (ib, sb)) in a.iter().zip(&b) {
            assert_eq!(ia, ib);
            assert_eq!(sa.raw(), sb.raw(), "thread scheduling must not leak in");
        }
        // A single shard never parallelises, even when asked to.
        assert!(!soc_shards(1).with_parallelism(true).is_parallel());
    }

    #[test]
    fn mixed_backends_shard_too() {
        let m = model();
        let ids = all_ids(&m);
        let x: Vec<f32> = (0..m.feature_dim()).map(|d| 0.11 * d as f32).collect();
        let sel = GmmSelectionConfig::default();
        let mut mixed = ShardedScorer::new(vec![
            Box::new(SoftwareScorer::new(sel)) as Box<dyn SenoneScorer>,
            Box::new(SimdScorer::new(sel)) as Box<dyn SenoneScorer>,
        ])
        .unwrap();
        assert_eq!(mixed.num_shards(), 2);
        assert_eq!(mixed.shard_names(), vec!["software", "simd"]);
        assert_eq!(mixed.name(), "sharded");
        mixed.begin_frame(&x);
        let got = mixed.score_senones(&m, &ids, &x).unwrap();
        let mut scalar = SoftwareScorer::new(sel);
        let want = scalar.score_senones(&m, &ids, &x).unwrap();
        for ((ia, sa), (ib, sb)) in want.iter().zip(&got) {
            assert_eq!(ia, ib);
            // Scalar and SIMD agree to float tolerance, so the mixed shard
            // output stays within it as well.
            assert!((sa.raw() - sb.raw()).abs() < 1e-2, "{ia:?}");
        }
        // Software shards keep no hardware report.
        assert!(mixed.finish_utterance().is_none());
    }

    #[test]
    fn per_shard_reports_fold_without_multiplying_frames() {
        let m = model();
        let ids = all_ids(&m);
        let frames = 6;
        let decode_frames = |scorer: &mut dyn SenoneScorer| {
            for f in 0..frames {
                let x: Vec<f32> = (0..m.feature_dim())
                    .map(|d| 0.03 * (f + d) as f32)
                    .collect();
                scorer.begin_frame(&x);
                scorer.score_senones(&m, &ids, &x).unwrap();
                scorer.end_frame(2, 1);
            }
        };
        let mut single = SocScorer::new(SocConfig::default()).unwrap();
        decode_frames(&mut single);
        let want = single.finish_utterance().unwrap();

        let mut sharded = soc_shards(4);
        decode_frames(&mut sharded);
        let got = sharded.finish_utterance().unwrap();

        // Same audio stream: frames and audio seconds match the unsharded
        // run; the scored work is the same total, split across shards.
        assert_eq!(got.frames, want.frames);
        assert!((got.energy.audio_seconds - want.energy.audio_seconds).abs() < 1e-12);
        assert_eq!(got.senones_scored, want.senones_scored);
        // Each shard carries a quarter of the load, so the sharded machine
        // has per-frame slack the single SoC does not.
        assert!(got.worst_frame_rtf <= want.worst_frame_rtf + 1e-12);
        // A finished scorer serves the next utterance from clean counters.
        let mut second = soc_shards(2);
        decode_frames(&mut second);
        second.finish_utterance().unwrap();
        decode_frames(&mut second);
        let again = second.finish_utterance().unwrap();
        assert_eq!(again.frames, frames);
    }

    #[test]
    fn hmm_updates_round_robin_across_shards() {
        let m = model();
        let t = m.transitions();
        let n = t.num_states();
        let prev = vec![LogProb::new(-2.0); n];
        let obs = vec![LogProb::new(-1.0); n];
        let mut sharded = soc_shards(3);
        for _ in 0..6 {
            sharded.step_hmm(&prev, LogProb::zero(), t, &obs).unwrap();
        }
        sharded.dma_fetch(128);
        sharded.end_frame(6, 2);
        let report = sharded.finish_utterance().unwrap();
        // 6 updates over 3 shards: every shard stepped twice, and the merged
        // report sees all six.
        assert_eq!(report.hmm_updates, 6);
        // reset() clears the round-robin cursor and the shards' counters:
        // finishing straight away yields a zero-frame report.
        sharded.reset();
        let cleared = sharded.finish_utterance().unwrap();
        assert_eq!(cleared.frames, 0);
        assert_eq!(cleared.hmm_updates, 0);
    }

    #[test]
    fn config_built_sharded_backend_matches_direct_construction() {
        let sel = GmmSelectionConfig::default();
        let kind = ScoringBackendKind::Sharded {
            shards: 2,
            inner: Box::new(ScoringBackendKind::Hardware(SocConfig::default())),
        };
        let mut scorer = kind.build_scorer(&sel).unwrap();
        assert_eq!(scorer.name(), "sharded");
        let m = model();
        let x = vec![0.1f32; m.feature_dim()];
        scorer.begin_frame(&x);
        let got = scorer.score_senones(&m, &all_ids(&m), &x).unwrap();
        assert_eq!(got.len(), m.senones().len());
        assert!(scorer.finish_utterance().is_some());
        // Zero shards is rejected at construction.
        let bad = ScoringBackendKind::Sharded {
            shards: 0,
            inner: Box::new(ScoringBackendKind::Software),
        };
        assert!(bad.build_scorer(&sel).is_err());
    }
}
