//! The sharded multi-SoC scorer: one [`SenoneScorer`] built from several.
//!
//! The paper scales senone scoring *up* by adding accelerator structures
//! inside one SoC; ASRPU-style designs scale it *out* by partitioning the
//! active-senone set across parallel scoring units.  [`ShardedScorer`] is
//! that scale-out step behind the existing seam: it owns N inner scorers
//! (N [`SpeechSoc`] instances via [`SocScorer`], or any mix of backends),
//! splits every frame's active set into N contiguous slices, scores the
//! slices concurrently, and folds the per-shard hardware reports with
//! [`UtteranceReport::merge_parallel`] so the final report describes one
//! scaled-out machine over one audio stream rather than N copies of the
//! audio.
//!
//! Two axes are tunable per backend (see [`ShardTuning`]):
//!
//! * **Dispatch** ([`ShardDispatch`]) — how per-frame work reaches the
//!   shards.  The default [`ShardDispatch::Pooled`] keeps N−1 long-lived
//!   worker threads for the *life of the scorer* (spawned lazily on the
//!   first parallel frame, fed jobs over channels, joined when the scorer
//!   is dropped or [`SenoneScorer::reset`]); shard 0 always scores inline
//!   on the calling thread.  Because [`SenoneScorer::finish_utterance`]
//!   leaves the pool warm, a batch — or a serving worker decoding
//!   indefinitely — spawns its threads exactly once, not once per
//!   utterance.  [`ShardDispatch::ScopedSpawn`] is the historical
//!   thread-per-frame dispatch, kept as the overhead baseline the
//!   `shard_scaling` bench gates against.  Worker lifetime is safe-Rust
//!   only: shard boxes and an [`Arc`]-cloned acoustic model round-trip
//!   through the job channels, so nothing borrows across threads.
//! * **Partition** ([`ShardPartition`]) — how the active set splits.  The
//!   default [`ShardPartition::CostWeighted`] balances *estimated cost*
//!   (per-senone mixture component count) instead of senone count, so a
//!   model with skewed mixture sizes still loads its shards evenly; for
//!   uniform-cost models it degenerates to the equal split automatically.
//!
//! Because every senone is scored by exactly one shard with the same
//! arithmetic the unsharded backend would use, sharding is *observationally
//! pure* under every dispatch × partition combination: scores, hypotheses
//! and decode statistics are identical to the unsharded inner scorer
//! (property-tested in `tests/shard.rs`), and only wall-clock throughput
//! and the hardware report's shape change.
//!
//! [`SpeechSoc`]: asr_hw::SpeechSoc
//! [`SocScorer`]: crate::SocScorer

use crate::config::{ShardDispatch, ShardPartition, ShardTuning};
use crate::scorer::{HmmStepResult, SenoneScorer};
use crate::DecodeError;
use asr_acoustic::{AcousticModel, SenoneId, TransitionMatrix};
use asr_float::LogProb;
use asr_hw::UtteranceReport;
use asr_obs::Counter;
use std::sync::{mpsc, Arc, OnceLock};

/// Name of the process-wide shard pool spawn counter in the global metrics
/// registry ([`asr_obs::MetricsRegistry::global`]): cumulative OS threads
/// spawned by every [`ShardedScorer`] pool in this process.
pub const SHARD_THREADS_SPAWNED_METRIC: &str = "shard.threads_spawned_total";

/// The registry-backed spawn counter, registered once and cached (the handle
/// is an `Arc` over one atomic — incrementing it costs what the old static
/// did).
fn spawn_counter() -> &'static Counter {
    static COUNTER: OnceLock<Counter> = OnceLock::new();
    COUNTER.get_or_init(|| asr_obs::MetricsRegistry::global().counter(SHARD_THREADS_SPAWNED_METRIC))
}

/// Cumulative number of OS threads spawned by all [`ShardedScorer`] pools in
/// this process, across their whole lifetime.
///
/// The per-scorer [`ShardedScorer::threads_spawned`] counter is unreachable
/// when the scorer lives inside another thread (a serving worker); this
/// process-wide counter is the observable the steady-state zero-spawn
/// property of a warm server is asserted on: once every worker's pool is
/// live, decoding more utterances must not move it.
#[deprecated(
    since = "0.1.0",
    note = "read the `shard.threads_spawned_total` counter from \
            `asr_obs::MetricsRegistry::global()` instead"
)]
pub fn shard_threads_spawned_total() -> usize {
    spawn_counter().get() as usize
}

/// Message loss on the worker channels means a worker thread died, which
/// only happens if an inner scorer panicked — propagate as a panic, exactly
/// like the scoped-thread dispatch's `join().expect(..)` did.
const WORKER_DIED: &str = "shard scoring worker panicked";

/// Invariant message: shard boxes are always present between frames (they
/// only leave `shards` while a pooled score call is in flight, and every
/// reply puts them back before the call returns).
const SHARD_PRESENT: &str = "shard present between frames";

/// A fingerprint of one senone's parameters, bit-compared to detect a
/// different model recycled at the same address (the same hazard
/// `SimdScorer`'s flattened-arena cache guards against).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SenoneProbe {
    components: usize,
    weight_const_bits: u32,
    mean_bits: u32,
    precision_bits: u32,
}

impl SenoneProbe {
    fn of(model: &AcousticModel, index: usize) -> Option<SenoneProbe> {
        let senone = model.senones().get(SenoneId(index as u32))?;
        let mix = senone.mixture();
        let first_gaussian = mix.components().first();
        Some(SenoneProbe {
            components: mix.num_components(),
            weight_const_bits: mix.log_weight_consts().first().map_or(0, |c| c.to_bits()),
            mean_bits: first_gaussian
                .and_then(|g| g.mean().first())
                .map_or(0, |m| m.to_bits()),
            // The last precision element too, matching the probe strength of
            // `FlattenedModel::spot_check`: a same-shape model recycled at
            // the same address must differ in *none* of these bits to be
            // mistaken for a cache hit.
            precision_bits: first_gaussian
                .and_then(|g| g.precision().last())
                .map_or(0, |p| p.to_bits()),
        })
    }
}

/// Per-model derived state, cached across utterances (a model-level cache in
/// the sense of the [`SenoneScorer`] contract): the per-senone cost table
/// driving the cost-weighted partition, and the shared [`Arc`] clone of the
/// model that pooled workers score against.
#[derive(Debug)]
struct ModelCache {
    model_ptr: usize,
    num_senones: usize,
    dim: usize,
    first: Option<SenoneProbe>,
    last: Option<SenoneProbe>,
    /// Estimated relative scoring cost per senone: its mixture component
    /// count (each component costs one full pass over the feature vector on
    /// every backend, so components dominate per-senone cost).
    costs: Vec<u32>,
    /// Whether every senone costs the same — the cost-weighted partition
    /// then short-circuits to the equal split.
    uniform: bool,
    /// Deep clone of the model handed to pooled workers (they outlive any
    /// borrow of the caller's model).  Built lazily on the first pooled
    /// frame; parameter values are identical, so scores are too.
    shared: Option<Arc<AcousticModel>>,
}

impl ModelCache {
    fn build(model: &AcousticModel) -> ModelCache {
        let costs: Vec<u32> = model
            .senones()
            .iter()
            .map(|s| s.mixture().num_components() as u32)
            .collect();
        let uniform = costs.windows(2).all(|w| w[0] == w[1]);
        ModelCache {
            model_ptr: model as *const AcousticModel as usize,
            num_senones: model.senones().len(),
            dim: model.feature_dim(),
            first: SenoneProbe::of(model, 0),
            last: SenoneProbe::of(model, model.senones().len().saturating_sub(1)),
            costs,
            uniform,
            shared: None,
        }
    }

    fn matches(&self, model: &AcousticModel) -> bool {
        self.model_ptr == model as *const AcousticModel as usize
            && self.num_senones == model.senones().len()
            && self.dim == model.feature_dim()
            && self.first == SenoneProbe::of(model, 0)
            && self.last == SenoneProbe::of(model, self.num_senones.saturating_sub(1))
    }

    fn shared_model(&mut self, model: &AcousticModel) -> &Arc<AcousticModel> {
        self.shared.get_or_insert_with(|| Arc::new(model.clone()))
    }
}

/// One frame's work for one pooled worker.  Everything is owned (`'static`),
/// which is what lets the workers be plain long-lived threads: the shard box
/// and the buffers (including the result buffer, recycled through
/// [`SenoneScorer::score_senones_into`]) round-trip caller → worker → caller
/// every frame, and the model travels as an [`Arc`].
#[derive(Debug)]
struct ScoreJob {
    shard: Box<dyn SenoneScorer>,
    model: Arc<AcousticModel>,
    active: Vec<SenoneId>,
    feature: Vec<f32>,
    result: Result<Vec<(SenoneId, LogProb)>, DecodeError>,
}

/// Recycled per-worker job buffers: active ids, feature copy, result.
type SpareBuffers = (Vec<SenoneId>, Vec<f32>, Vec<(SenoneId, LogProb)>);

/// The persistent per-utterance worker pool: worker `w` always serves shard
/// `w + 1` (shard 0 scores inline on the calling thread).  Each worker owns
/// its *own* reply channel, so if a worker dies mid-job its channel
/// disconnects and the caller's `recv` fails immediately — a shared reply
/// channel would stay open through the other workers' sender clones and
/// turn a worker panic into a caller deadlock.  Dropping the pool closes
/// the job channels and joins every worker.
#[derive(Debug)]
struct WorkerPool {
    senders: Vec<mpsc::Sender<ScoreJob>>,
    replies: Vec<mpsc::Receiver<ScoreJob>>,
    handles: Vec<std::thread::JoinHandle<()>>,
    /// Recycled job buffers per worker, so steady-state dispatch allocates
    /// nothing — not even the per-shard result vector.
    spare: Vec<SpareBuffers>,
}

impl WorkerPool {
    fn spawn(workers: usize) -> WorkerPool {
        let mut senders = Vec::with_capacity(workers);
        let mut replies = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let (tx, rx) = mpsc::channel::<ScoreJob>();
            let (reply_tx, reply_rx) = mpsc::channel::<ScoreJob>();
            let handle = std::thread::Builder::new()
                .name(format!("shard-worker-{}", w + 1))
                .spawn(move || {
                    while let Ok(mut job) = rx.recv() {
                        let mut buf =
                            std::mem::replace(&mut job.result, Ok(Vec::new())).unwrap_or_default();
                        buf.clear();
                        job.result = job
                            .shard
                            .score_senones_into(&job.model, &job.active, &job.feature, &mut buf)
                            .map(|()| buf);
                        if reply_tx.send(job).is_err() {
                            return;
                        }
                    }
                })
                .expect("spawn shard worker thread");
            senders.push(tx);
            replies.push(reply_rx);
            handles.push(handle);
        }
        spawn_counter().add(workers as u64);
        WorkerPool {
            senders,
            replies,
            handles,
            spare: (0..workers)
                .map(|_| (Vec::new(), Vec::new(), Vec::new()))
                .collect(),
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the senders ends every worker's receive loop; joining
        // bounds the thread lifetime to the scorer's (the pool survives
        // `finish_utterance`, so a warm scorer decodes a whole stream of
        // utterances on one set of threads).  A worker that panicked
        // already surfaced as a caller panic on the reply channel, so join
        // errors are not re-raised here.
        self.senders.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Writes the partition boundaries for `active` into `bounds`
/// (`n + 1` entries, `bounds[k]..bounds[k + 1]` is shard `k`'s slice).
/// With `costs`, slices balance total estimated cost; without, they balance
/// senone count (the historical equal split).
fn fill_bounds(bounds: &mut Vec<usize>, n: usize, active: &[SenoneId], costs: Option<&[u32]>) {
    bounds.clear();
    bounds.push(0);
    let cost_of =
        |costs: &[u32], id: SenoneId| -> u64 { costs.get(id.index()).copied().unwrap_or(1) as u64 };
    let total = costs.map(|costs| active.iter().map(|&id| cost_of(costs, id)).sum::<u64>());
    match (costs, total) {
        (Some(costs), Some(total)) if total > 0 => {
            let mut acc = 0u64;
            let mut k = 1usize;
            for (i, &id) in active.iter().enumerate() {
                acc += cost_of(costs, id);
                // Cut shard k as soon as the prefix holds a k/n share of the
                // total cost; a dominant senone may produce empty slices for
                // later shards, which simply score nothing that frame.
                while k < n && acc * n as u64 >= total * k as u64 {
                    bounds.push(i + 1);
                    k += 1;
                }
            }
            while bounds.len() < n {
                bounds.push(active.len());
            }
        }
        _ => {
            let chunk = active.len().div_ceil(n).max(1);
            for k in 1..n {
                bounds.push((k * chunk).min(active.len()));
            }
        }
    }
    bounds.push(active.len());
}

/// A scorer that shards the active-senone set across several inner scorers.
///
/// * [`SenoneScorer::score_senones`] splits the active set into
///   `num_shards()` contiguous slices — cost-weighted by mixture component
///   count under [`ShardPartition::CostWeighted`], equal-sized under
///   [`ShardPartition::EqualSplit`] — and scores them concurrently,
///   concatenating the per-slice results in `active` order.  Shard 0 always
///   scores on the calling thread; the rest are fed through the persistent
///   worker pool ([`ShardDispatch::Pooled`], zero thread spawns per frame)
///   or scored on per-frame scoped threads ([`ShardDispatch::ScopedSpawn`]).
/// * [`SenoneScorer::step_hmm`] dispatches HMM updates round-robin across the
///   shards, mirroring [`SpeechSoc`]'s internal structure scheduling.
/// * [`SenoneScorer::finish_utterance`] folds the shards' reports with
///   [`UtteranceReport::merge_parallel`], which also records the per-shard
///   scored-senone balance ([`UtteranceReport::shard_senones`] /
///   [`UtteranceReport::worst_shard_share`]).  The worker pool stays warm
///   across utterances; it joins when the scorer is dropped (or
///   [`SenoneScorer::reset`]), so a batch — or a serving worker — spawns
///   threads once, not once per utterance.
/// * The host-side bookkeeping calls ([`SenoneScorer::dma_fetch`], the
///   software-stage charge of [`SenoneScorer::end_frame`]) go to shard 0
///   only, so host cycles and dictionary traffic are not multiplied by the
///   shard count; every shard still opens and closes its frame window.
///
/// Build one directly from live scorers with [`ShardedScorer::new`], or
/// declaratively through
/// [`ScoringBackendKind::Sharded`](crate::ScoringBackendKind::Sharded).
///
/// [`SpeechSoc`]: asr_hw::SpeechSoc
#[derive(Debug)]
pub struct ShardedScorer {
    /// `Some` between frames; entries leave only while a pooled score call
    /// is in flight and return before it completes.
    shards: Vec<Option<Box<dyn SenoneScorer>>>,
    next_hmm_shard: usize,
    /// Whether to score shards on threads at all.  Defaults to "only when the
    /// host has more than one CPU": on a single-core host the threads would
    /// serialise anyway and only the dispatch overhead would remain.
    parallel: bool,
    tuning: ShardTuning,
    /// Per-model cost table + pooled model clone (survives utterances).
    model_cache: Option<ModelCache>,
    /// The long-lived worker pool (pooled dispatch only; `None` until the
    /// first parallel frame, then warm across utterances until the scorer
    /// drops or `reset`s).
    pool: Option<WorkerPool>,
    /// Cumulative OS threads spawned (pool workers + scoped threads) — the
    /// observable the zero-spawns-per-utterance property is asserted on.
    threads_spawned: usize,
    /// Reusable partition-boundary scratch.
    bounds: Vec<usize>,
}

impl ShardedScorer {
    /// Builds the scorer around the given shards (any mix of backends), with
    /// default [`ShardTuning`].
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::InvalidConfig`] when `shards` is empty.
    pub fn new(shards: Vec<Box<dyn SenoneScorer>>) -> Result<Self, DecodeError> {
        if shards.is_empty() {
            return Err(DecodeError::InvalidConfig(
                "a sharded scorer needs at least one shard".into(),
            ));
        }
        let host_cpus = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Ok(ShardedScorer {
            parallel: shards.len() > 1 && host_cpus > 1,
            shards: shards.into_iter().map(Some).collect(),
            next_hmm_shard: 0,
            tuning: ShardTuning::default(),
            model_cache: None,
            pool: None,
            threads_spawned: 0,
            bounds: Vec::new(),
        })
    }

    /// Overrides the host-parallelism heuristic: `true` forces threaded
    /// scoring even on a single-core host, `false` forces the sequential
    /// fan-out.  Results are identical either way; only wall-clock changes.
    pub fn with_parallelism(mut self, parallel: bool) -> Self {
        self.parallel = parallel && self.shards.len() > 1;
        self
    }

    /// Replaces all tuning knobs at once (the path
    /// [`ScoringBackendKind::Sharded`](crate::ScoringBackendKind::Sharded)
    /// uses).  A zero `min_parallel_senones` is clamped to 1.
    pub fn with_tuning(mut self, tuning: ShardTuning) -> Self {
        self.tuning = ShardTuning {
            min_parallel_senones: tuning.min_parallel_senones.max(1),
            ..tuning
        };
        self
    }

    /// Sets the active-set size below which frames are scored on the calling
    /// thread (clamped to at least 1).
    pub fn with_min_parallel_senones(mut self, min_parallel_senones: usize) -> Self {
        self.tuning.min_parallel_senones = min_parallel_senones.max(1);
        self
    }

    /// Sets the partition policy.
    pub fn with_partition(mut self, partition: ShardPartition) -> Self {
        self.tuning.partition = partition;
        self
    }

    /// Sets the dispatch mechanism.
    pub fn with_dispatch(mut self, dispatch: ShardDispatch) -> Self {
        self.tuning.dispatch = dispatch;
        self
    }

    /// The active tuning knobs.
    pub fn tuning(&self) -> ShardTuning {
        self.tuning
    }

    /// Whether frames are scored on threads (false on single-core hosts,
    /// where the shards still partition the work but score in turn).
    pub fn is_parallel(&self) -> bool {
        self.parallel
    }

    /// Number of inner scorers.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Cumulative count of OS threads this scorer has spawned — pool workers
    /// (`num_shards() - 1`, exactly once for the scorer's whole life under
    /// [`ShardDispatch::Pooled`], however many utterances it decodes) plus
    /// per-frame scoped threads under [`ShardDispatch::ScopedSpawn`].  The
    /// pooled zero-spawns-per-utterance property is asserted on this
    /// counter; the process-wide form serving tests observe is the
    /// [`SHARD_THREADS_SPAWNED_METRIC`] counter in the global metrics
    /// registry.
    pub fn threads_spawned(&self) -> usize {
        self.threads_spawned
    }

    /// Whether the worker pool is currently live (pooled dispatch, any time
    /// after the first parallel frame; the pool survives
    /// [`SenoneScorer::finish_utterance`] and joins on drop or
    /// [`SenoneScorer::reset`]).
    pub fn pool_is_live(&self) -> bool {
        self.pool.is_some()
    }

    /// The inner scorers' names, in shard order.
    pub fn shard_names(&self) -> Vec<&'static str> {
        self.shards
            .iter()
            .map(|s| s.as_ref().expect(SHARD_PRESENT).name())
            .collect()
    }

    /// The contiguous slice boundaries the current tuning would partition
    /// `active` into for `model` (`num_shards() + 1` entries).  Exposed for
    /// tests and load-balance inspection; scoring uses exactly this split.
    pub fn partition_bounds(&mut self, model: &AcousticModel, active: &[SenoneId]) -> Vec<usize> {
        self.refresh_model_cache(model);
        let mut bounds = std::mem::take(&mut self.bounds);
        fill_bounds(&mut bounds, self.shards.len(), active, self.active_costs());
        let snapshot = bounds.clone();
        self.bounds = bounds;
        snapshot
    }

    fn refresh_model_cache(&mut self, model: &AcousticModel) {
        if self.model_cache.as_ref().is_some_and(|c| c.matches(model)) {
            return;
        }
        self.model_cache = Some(ModelCache::build(model));
    }

    /// The cost table to partition with — `None` when the equal split
    /// applies (explicitly configured, or every senone costs the same).
    fn active_costs(&self) -> Option<&[u32]> {
        match (self.tuning.partition, &self.model_cache) {
            (ShardPartition::CostWeighted, Some(cache)) if !cache.uniform => {
                Some(cache.costs.as_slice())
            }
            _ => None,
        }
    }

    /// Sequential fan-out over the partition on the calling thread (small
    /// frames, and hosts where threading cannot win).
    fn score_inline(
        &mut self,
        model: &AcousticModel,
        active: &[SenoneId],
        feature: &[f32],
        bounds: &[usize],
        out: &mut Vec<(SenoneId, LogProb)>,
    ) -> Result<(), DecodeError> {
        // Shards beyond 0 keep scoring against the pooled model clone once
        // it exists, so pointer-keyed inner caches (the SIMD arena) are not
        // invalidated by frames bouncing across the size threshold.
        let shared = self.model_cache.as_ref().and_then(|c| c.shared.as_deref());
        for (i, slot) in self.shards.iter_mut().enumerate() {
            let part = &active[bounds[i]..bounds[i + 1]];
            if part.is_empty() {
                continue;
            }
            let shard_model = if i == 0 {
                model
            } else {
                shared.unwrap_or(model)
            };
            slot.as_mut().expect(SHARD_PRESENT).score_senones_into(
                shard_model,
                part,
                feature,
                out,
            )?;
        }
        Ok(())
    }

    /// Persistent-pool dispatch: shard boxes and reusable buffers travel to
    /// the workers and back within this call; the calling thread scores
    /// shard 0 while the workers run.
    fn score_pooled(
        &mut self,
        model: &AcousticModel,
        active: &[SenoneId],
        feature: &[f32],
        bounds: &[usize],
        out: &mut Vec<(SenoneId, LogProb)>,
    ) -> Result<(), DecodeError> {
        let n = self.shards.len();
        if self.pool.is_none() {
            self.pool = Some(WorkerPool::spawn(n - 1));
            self.threads_spawned += n - 1;
            // The one observable shard-pool lifecycle moment: attribute the
            // spawn to whichever trace is decoding (the serve worker pins
            // the admitted request's trace around its decode call), or
            // trace 0 for direct/offline decodes.  Gated on the cheap flag
            // so a telemetry-free process pays one relaxed load, and only
            // on this cold path.
            if asr_obs::global_enabled() {
                asr_obs::global().emit(
                    asr_obs::current_trace(),
                    &asr_obs::SpanEvent::ShardDispatch {
                        shards: n,
                        threads: n - 1,
                    },
                );
            }
        }
        let ShardedScorer {
            shards,
            pool,
            model_cache,
            ..
        } = self;
        let pool = pool.as_mut().expect("pool created above");
        let shared = Arc::clone(
            model_cache
                .as_mut()
                .expect("model cache refreshed before pooled dispatch")
                .shared_model(model),
        );
        for w in 0..n - 1 {
            let part = &active[bounds[w + 1]..bounds[w + 2]];
            if part.is_empty() {
                continue;
            }
            let (mut active_buf, mut feature_buf, result_buf) = std::mem::take(&mut pool.spare[w]);
            active_buf.clear();
            active_buf.extend_from_slice(part);
            feature_buf.clear();
            feature_buf.extend_from_slice(feature);
            let job = ScoreJob {
                shard: shards[w + 1].take().expect(SHARD_PRESENT),
                model: Arc::clone(&shared),
                active: active_buf,
                feature: feature_buf,
                result: Ok(result_buf),
            };
            pool.senders[w].send(job).expect(WORKER_DIED);
        }
        // Score shard 0's slice here instead of idling on the replies; any
        // error is held until every worker has answered, so the shard boxes
        // are restored before it propagates.
        let first_part = &active[bounds[0]..bounds[1]];
        let mut first_err = if first_part.is_empty() {
            None
        } else {
            shards[0]
                .as_mut()
                .expect(SHARD_PRESENT)
                .score_senones_into(model, first_part, feature, out)
                .err()
        };
        // Each worker replies on its own channel, so receiving in worker
        // order yields shard order directly, and a worker that panicked
        // disconnects its channel rather than leaving this recv waiting.
        for w in 0..n - 1 {
            if active[bounds[w + 1]..bounds[w + 2]].is_empty() {
                continue;
            }
            let job = pool.replies[w].recv().expect(WORKER_DIED);
            let ScoreJob {
                shard,
                active: active_buf,
                feature: feature_buf,
                result,
                model: _,
            } = job;
            shards[w + 1] = Some(shard);
            let result_buf = match result {
                Ok(mut scores) => {
                    if first_err.is_none() {
                        out.append(&mut scores);
                    }
                    scores
                }
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                    Vec::new()
                }
            };
            pool.spare[w] = (active_buf, feature_buf, result_buf);
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// The historical dispatch: one scoped thread per non-empty slice per
    /// frame.  Kept as the bench baseline pooled dispatch is gated against.
    fn score_scoped(
        &mut self,
        model: &AcousticModel,
        active: &[SenoneId],
        feature: &[f32],
        bounds: &[usize],
        out: &mut Vec<(SenoneId, LogProb)>,
    ) -> Result<(), DecodeError> {
        let (first_slot, rest) = self
            .shards
            .split_first_mut()
            .expect("at least one shard exists");
        let mut spawned = 0usize;
        let (first_result, rest_results) = std::thread::scope(|scope| {
            let handles: Vec<_> = rest
                .iter_mut()
                .enumerate()
                .filter_map(|(w, slot)| {
                    let part = &active[bounds[w + 1]..bounds[w + 2]];
                    if part.is_empty() {
                        return None;
                    }
                    let shard = slot.as_mut().expect(SHARD_PRESENT);
                    Some(scope.spawn(move || shard.score_senones(model, part, feature)))
                })
                .collect();
            spawned = handles.len();
            let first_part = &active[bounds[0]..bounds[1]];
            let first = if first_part.is_empty() {
                Ok(Vec::new())
            } else {
                first_slot
                    .as_mut()
                    .expect(SHARD_PRESENT)
                    .score_senones(model, first_part, feature)
            };
            let rest: Vec<Result<Vec<(SenoneId, LogProb)>, DecodeError>> = handles
                .into_iter()
                .map(|h| h.join().expect("shard scoring thread panicked"))
                .collect();
            (first, rest)
        });
        self.threads_spawned += spawned;
        out.extend(first_result?);
        for r in rest_results {
            out.extend(r?);
        }
        Ok(())
    }
}

impl SenoneScorer for ShardedScorer {
    fn name(&self) -> &'static str {
        "sharded"
    }

    fn begin_frame(&mut self, feature: &[f32]) {
        for slot in &mut self.shards {
            slot.as_mut().expect(SHARD_PRESENT).begin_frame(feature);
        }
    }

    fn score_senones(
        &mut self,
        model: &AcousticModel,
        active: &[SenoneId],
        feature: &[f32],
    ) -> Result<Vec<(SenoneId, LogProb)>, DecodeError> {
        let mut out = Vec::with_capacity(active.len());
        self.score_senones_into(model, active, feature, &mut out)?;
        Ok(out)
    }

    fn score_senones_into(
        &mut self,
        model: &AcousticModel,
        active: &[SenoneId],
        feature: &[f32],
        out: &mut Vec<(SenoneId, LogProb)>,
    ) -> Result<(), DecodeError> {
        if self.shards.len() == 1 {
            return self.shards[0]
                .as_mut()
                .expect(SHARD_PRESENT)
                .score_senones_into(model, active, feature, out);
        }
        let pooled = self.tuning.dispatch == ShardDispatch::Pooled;
        if self.tuning.partition == ShardPartition::CostWeighted || (pooled && self.parallel) {
            self.refresh_model_cache(model);
        }
        let mut bounds = std::mem::take(&mut self.bounds);
        fill_bounds(&mut bounds, self.shards.len(), active, self.active_costs());
        let result = if !self.parallel || active.len() < self.tuning.min_parallel_senones {
            self.score_inline(model, active, feature, &bounds, out)
        } else if pooled {
            self.score_pooled(model, active, feature, &bounds, out)
        } else {
            self.score_scoped(model, active, feature, &bounds, out)
        };
        self.bounds = bounds;
        result
    }

    fn step_hmm(
        &mut self,
        prev_scores: &[LogProb],
        entry_score: LogProb,
        transitions: &TransitionMatrix,
        senone_scores: &[LogProb],
    ) -> Result<HmmStepResult, DecodeError> {
        let idx = self.next_hmm_shard;
        self.next_hmm_shard = (idx + 1) % self.shards.len();
        self.shards[idx].as_mut().expect(SHARD_PRESENT).step_hmm(
            prev_scores,
            entry_score,
            transitions,
            senone_scores,
        )
    }

    fn dma_fetch(&mut self, bytes: u64) {
        // Dictionary / LM traffic happens once, not once per shard.
        self.shards[0]
            .as_mut()
            .expect(SHARD_PRESENT)
            .dma_fetch(bytes);
    }

    fn end_frame(&mut self, active_triphones: usize, lattice_edges: usize) {
        // The host software stages run once; charge them to shard 0.  Every
        // other shard still closes its frame window (idle cycles, bandwidth).
        for (i, slot) in self.shards.iter_mut().enumerate() {
            let shard = slot.as_mut().expect(SHARD_PRESENT);
            if i == 0 {
                shard.end_frame(active_triphones, lattice_edges);
            } else {
                shard.end_frame(0, 0);
            }
        }
    }

    fn finish_utterance(&mut self) -> Option<UtteranceReport> {
        self.next_hmm_shard = 0;
        // The worker pool deliberately survives this call: like the model
        // cache (cost table, pooled model clone), it is cross-utterance
        // state, so the next utterance of a batch — or the next request on a
        // warm serving worker — reuses the same threads.  The pool joins
        // when the scorer drops (`WorkerPool::drop`) or on `reset`.
        let mut merged: Option<UtteranceReport> = None;
        for slot in &mut self.shards {
            if let Some(report) = slot.as_mut().expect(SHARD_PRESENT).finish_utterance() {
                merged = Some(match merged {
                    Some(acc) => acc.merge_parallel(&report),
                    None => report,
                });
            }
        }
        merged
    }

    fn reset(&mut self) {
        self.next_hmm_shard = 0;
        // A full reset is the one explicit way to release the pool threads
        // without dropping the scorer; the next parallel frame respawns them.
        self.pool = None;
        for slot in &mut self.shards {
            slot.as_mut().expect(SHARD_PRESENT).reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{GmmSelectionConfig, ScoringBackendKind};
    use crate::scorer::{SimdScorer, SocScorer, SoftwareScorer};
    use asr_acoustic::AcousticModelConfig;
    use asr_hw::SocConfig;

    fn model() -> AcousticModel {
        AcousticModel::untrained(AcousticModelConfig::tiny()).unwrap()
    }

    fn all_ids(m: &AcousticModel) -> Vec<SenoneId> {
        (0..m.senones().len() as u32).map(SenoneId).collect()
    }

    fn soc_shards(n: usize) -> ShardedScorer {
        let shards: Vec<Box<dyn SenoneScorer>> = (0..n)
            .map(|_| {
                Box::new(SocScorer::new(SocConfig::default()).unwrap()) as Box<dyn SenoneScorer>
            })
            .collect();
        ShardedScorer::new(shards).unwrap()
    }

    #[test]
    fn empty_shard_list_is_a_typed_error() {
        assert!(matches!(
            ShardedScorer::new(Vec::new()),
            Err(DecodeError::InvalidConfig(_))
        ));
    }

    #[test]
    fn sharded_scores_match_the_unsharded_inner_scorer() {
        let m = model();
        let ids = all_ids(&m);
        let x: Vec<f32> = (0..m.feature_dim()).map(|d| 0.23 * d as f32).collect();
        let mut reference = SocScorer::new(SocConfig::default()).unwrap();
        reference.begin_frame(&x);
        let want = reference.score_senones(&m, &ids, &x).unwrap();
        for n in [1usize, 2, 4] {
            for dispatch in [ShardDispatch::Pooled, ShardDispatch::ScopedSpawn] {
                for partition in [ShardPartition::EqualSplit, ShardPartition::CostWeighted] {
                    let mut sharded = soc_shards(n)
                        .with_parallelism(true)
                        .with_dispatch(dispatch)
                        .with_partition(partition);
                    sharded.begin_frame(&x);
                    let got = sharded.score_senones(&m, &ids, &x).unwrap();
                    assert_eq!(got.len(), want.len());
                    for ((ia, sa), (ib, sb)) in want.iter().zip(&got) {
                        assert_eq!(ia, ib, "{n} shards must keep active order");
                        assert_eq!(sa.raw(), sb.raw(), "{n} shards changed {ia:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn forced_parallel_and_sequential_paths_agree() {
        let m = model();
        let ids = all_ids(&m); // 24 senones: above the parallel threshold
        let x: Vec<f32> = (0..m.feature_dim()).map(|d| 0.31 * d as f32).collect();
        for dispatch in [ShardDispatch::Pooled, ShardDispatch::ScopedSpawn] {
            let mut parallel = soc_shards(4).with_parallelism(true).with_dispatch(dispatch);
            let mut sequential = soc_shards(4)
                .with_parallelism(false)
                .with_dispatch(dispatch);
            assert!(parallel.is_parallel());
            assert!(!sequential.is_parallel());
            parallel.begin_frame(&x);
            sequential.begin_frame(&x);
            let a = parallel.score_senones(&m, &ids, &x).unwrap();
            let b = sequential.score_senones(&m, &ids, &x).unwrap();
            for ((ia, sa), (ib, sb)) in a.iter().zip(&b) {
                assert_eq!(ia, ib);
                assert_eq!(sa.raw(), sb.raw(), "thread scheduling must not leak in");
            }
        }
        // A single shard never parallelises, even when asked to.
        assert!(!soc_shards(1).with_parallelism(true).is_parallel());
    }

    #[test]
    fn pooled_dispatch_spawns_workers_once_per_scorer() {
        let m = model();
        let ids = all_ids(&m);
        let frames = 12;
        let mut pooled = soc_shards(3)
            .with_parallelism(true)
            .with_dispatch(ShardDispatch::Pooled);
        assert_eq!(pooled.threads_spawned(), 0);
        for _utterance in 1..=2u32 {
            for f in 0..frames {
                let x: Vec<f32> = (0..m.feature_dim())
                    .map(|d| 0.01 * (f + d) as f32)
                    .collect();
                pooled.begin_frame(&x);
                pooled.score_senones(&m, &ids, &x).unwrap();
                pooled.end_frame(1, 0);
            }
            assert!(pooled.pool_is_live());
            pooled.finish_utterance().unwrap();
            // The pool survives the utterance boundary: the workers spawned
            // on the first parallel frame serve every later utterance too.
            assert!(pooled.pool_is_live(), "finish_utterance keeps the pool");
            assert_eq!(pooled.threads_spawned(), 2);
        }
        // reset() is the explicit thread-release path; the next parallel
        // frame respawns.
        pooled.reset();
        assert!(!pooled.pool_is_live(), "reset joins the pool");
        let x = vec![0.1f32; m.feature_dim()];
        pooled.begin_frame(&x);
        pooled.score_senones(&m, &ids, &x).unwrap();
        assert_eq!(pooled.threads_spawned(), 4);
        // The scoped baseline pays the spawn on every scored frame.
        let mut scoped = soc_shards(3)
            .with_parallelism(true)
            .with_dispatch(ShardDispatch::ScopedSpawn);
        for f in 0..frames {
            let x: Vec<f32> = (0..m.feature_dim())
                .map(|d| 0.01 * (f + d) as f32)
                .collect();
            scoped.begin_frame(&x);
            scoped.score_senones(&m, &ids, &x).unwrap();
            scoped.end_frame(1, 0);
        }
        scoped.finish_utterance().unwrap();
        assert_eq!(scoped.threads_spawned(), frames * 2);
    }

    /// The tentpole property behind warm-server zero-spawn serving: a
    /// 16-utterance stream through one pooled scorer spawns its N−1 workers
    /// exactly once, on the first parallel frame of the first utterance,
    /// and the results stay identical to a fresh scorer's.
    #[test]
    fn pool_survives_a_16_utterance_stream_with_one_spawn() {
        let m = model();
        let ids = all_ids(&m);
        let before_total = spawn_counter().get();
        let mut warm = soc_shards(3)
            .with_parallelism(true)
            .with_dispatch(ShardDispatch::Pooled);
        let mut reports = Vec::new();
        for utterance in 0..16 {
            for f in 0..4 {
                let x: Vec<f32> = (0..m.feature_dim())
                    .map(|d| 0.01 * (utterance + f + d) as f32)
                    .collect();
                warm.begin_frame(&x);
                let scores = warm.score_senones(&m, &ids, &x).unwrap();
                // Same arithmetic as a cold scorer on the same frame.
                let mut cold = soc_shards(3)
                    .with_parallelism(false)
                    .with_dispatch(ShardDispatch::Pooled);
                cold.begin_frame(&x);
                let want = cold.score_senones(&m, &ids, &x).unwrap();
                for ((ia, sa), (ib, sb)) in want.iter().zip(&scores) {
                    assert_eq!(ia, ib);
                    assert_eq!(sa.raw(), sb.raw());
                }
                warm.end_frame(1, 0);
            }
            reports.push(warm.finish_utterance().unwrap());
            assert_eq!(
                warm.threads_spawned(),
                2,
                "utterance {utterance} must not respawn the pool"
            );
        }
        assert_eq!(reports.len(), 16);
        assert!(reports.iter().all(|r| r.frames == 4));
        // Other tests run concurrently, so the process-wide counter can only
        // be bounded below: this scorer contributed exactly its 2 workers.
        assert!(spawn_counter().get() >= before_total + 2);
    }

    /// A backend whose scoring panics — stands in for an inner-scorer bug.
    #[derive(Debug)]
    struct PanickingScorer;

    impl SenoneScorer for PanickingScorer {
        fn name(&self) -> &'static str {
            "panicking"
        }
        fn begin_frame(&mut self, _feature: &[f32]) {}
        fn score_senones(
            &mut self,
            _model: &AcousticModel,
            _active: &[SenoneId],
            _feature: &[f32],
        ) -> Result<Vec<(SenoneId, LogProb)>, DecodeError> {
            panic!("inner scorer bug");
        }
        fn step_hmm(
            &mut self,
            prev_scores: &[LogProb],
            entry_score: LogProb,
            transitions: &TransitionMatrix,
            senone_scores: &[LogProb],
        ) -> Result<HmmStepResult, DecodeError> {
            crate::scorer::software_step_hmm(prev_scores, entry_score, transitions, senone_scores)
        }
        fn finish_utterance(&mut self) -> Option<UtteranceReport> {
            None
        }
        fn reset(&mut self) {}
    }

    /// A backend that scores normally for `healthy_calls` frames, then
    /// panics — an inner-scorer bug that only bites once the pool is warm.
    #[derive(Debug)]
    struct LatePanickingScorer {
        inner: SoftwareScorer,
        healthy_calls: usize,
        calls: usize,
    }

    impl SenoneScorer for LatePanickingScorer {
        fn name(&self) -> &'static str {
            "late-panicking"
        }
        fn begin_frame(&mut self, _feature: &[f32]) {}
        fn score_senones(
            &mut self,
            model: &AcousticModel,
            active: &[SenoneId],
            feature: &[f32],
        ) -> Result<Vec<(SenoneId, LogProb)>, DecodeError> {
            self.calls += 1;
            if self.calls > self.healthy_calls {
                panic!("inner scorer bug on call {}", self.calls);
            }
            self.inner.score_senones(model, active, feature)
        }
        fn step_hmm(
            &mut self,
            prev_scores: &[LogProb],
            entry_score: LogProb,
            transitions: &TransitionMatrix,
            senone_scores: &[LogProb],
        ) -> Result<HmmStepResult, DecodeError> {
            crate::scorer::software_step_hmm(prev_scores, entry_score, transitions, senone_scores)
        }
        fn finish_utterance(&mut self) -> Option<UtteranceReport> {
            None
        }
        fn reset(&mut self) {}
    }

    /// With the pool surviving utterance boundaries, a worker that panics on
    /// a *later* utterance of a batch (its threads long since spawned) must
    /// still propagate to the caller as a panic, never a hang: the worker's
    /// private reply channel disconnects and `recv` fails immediately.
    #[test]
    fn pooled_worker_panic_mid_batch_propagates() {
        let m = model();
        let ids = all_ids(&m);
        let sel = GmmSelectionConfig::default();
        let healthy = |sel| Box::new(SoftwareScorer::new(sel)) as Box<dyn SenoneScorer>;
        // Worker shard 1 stays healthy for its first 2 frames (utterance 1),
        // then dies on its first frame of utterance 2.
        let mut sharded = ShardedScorer::new(vec![
            healthy(sel),
            Box::new(LatePanickingScorer {
                inner: SoftwareScorer::new(sel),
                healthy_calls: 2,
                calls: 0,
            }) as Box<dyn SenoneScorer>,
            healthy(sel),
        ])
        .unwrap()
        .with_parallelism(true)
        .with_dispatch(ShardDispatch::Pooled);
        let x = vec![0.1f32; m.feature_dim()];
        for _ in 0..2 {
            sharded.begin_frame(&x);
            sharded.score_senones(&m, &ids, &x).unwrap();
            sharded.end_frame(1, 0);
        }
        assert!(sharded.finish_utterance().is_none());
        assert!(sharded.pool_is_live(), "pool warm into utterance 2");
        sharded.begin_frame(&x);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = sharded.score_senones(&m, &ids, &x);
        }))
        .expect_err("a dead worker must panic the caller");
        let message = caught
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_owned)
            .or_else(|| caught.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(
            message.contains("shard scoring worker panicked"),
            "unexpected panic payload: {message}"
        );
    }

    /// A worker that dies mid-job must panic the caller (its private reply
    /// channel disconnects), never leave it blocked on a reply that cannot
    /// arrive — the regression a shared reply channel had with ≥ 2 workers.
    #[test]
    #[should_panic(expected = "shard scoring worker panicked")]
    fn pooled_worker_panic_propagates_instead_of_deadlocking() {
        let m = model();
        let ids = all_ids(&m);
        let x = vec![0.1f32; m.feature_dim()];
        let sel = GmmSelectionConfig::default();
        let mut sharded = ShardedScorer::new(vec![
            Box::new(SoftwareScorer::new(sel)) as Box<dyn SenoneScorer>,
            Box::new(SoftwareScorer::new(sel)) as Box<dyn SenoneScorer>,
            Box::new(PanickingScorer) as Box<dyn SenoneScorer>,
            Box::new(SoftwareScorer::new(sel)) as Box<dyn SenoneScorer>,
        ])
        .unwrap()
        .with_parallelism(true)
        .with_dispatch(ShardDispatch::Pooled);
        sharded.begin_frame(&x);
        let _ = sharded.score_senones(&m, &ids, &x);
    }

    #[test]
    fn small_frames_stay_inline_under_the_threshold() {
        let m = model();
        let x: Vec<f32> = (0..m.feature_dim()).map(|d| 0.05 * d as f32).collect();
        let small: Vec<SenoneId> = (0..4).map(SenoneId).collect();
        let mut sharded = soc_shards(4)
            .with_parallelism(true)
            .with_min_parallel_senones(8);
        sharded.begin_frame(&x);
        sharded.score_senones(&m, &small, &x).unwrap();
        assert_eq!(
            sharded.threads_spawned(),
            0,
            "a 4-senone frame must not reach the dispatcher"
        );
        assert!(!sharded.pool_is_live());
        // Lowering the threshold to 1 makes the same frame eligible.
        let mut eager = soc_shards(4)
            .with_parallelism(true)
            .with_min_parallel_senones(1);
        assert_eq!(eager.tuning().min_parallel_senones, 1);
        eager.begin_frame(&x);
        eager.score_senones(&m, &small, &x).unwrap();
        assert!(eager.threads_spawned() > 0);
        // The builder clamps zero to one instead of wedging the comparison.
        assert_eq!(
            soc_shards(2)
                .with_min_parallel_senones(0)
                .tuning()
                .min_parallel_senones,
            1
        );
        assert_eq!(
            soc_shards(2)
                .with_tuning(ShardTuning {
                    min_parallel_senones: 0,
                    ..ShardTuning::default()
                })
                .tuning()
                .min_parallel_senones,
            1
        );
    }

    #[test]
    fn partition_bounds_balance_cost_not_count_on_skewed_models() {
        // 24 senones whose component counts grow with the index: an equal
        // count split overloads the last shard, the cost-weighted split
        // hands it fewer senones.
        let m = model();
        let ids = all_ids(&m);
        let mut weighted = soc_shards(4).with_partition(ShardPartition::CostWeighted);
        let mut equal = soc_shards(4).with_partition(ShardPartition::EqualSplit);
        let eq_bounds = equal.partition_bounds(&m, &ids);
        assert_eq!(eq_bounds, vec![0, 6, 12, 18, 24]);
        // The tiny untrained model is uniform-cost, so cost weighting
        // degenerates to the equal split.
        assert_eq!(weighted.partition_bounds(&m, &ids), eq_bounds);
        // Every bound list is monotone and covers the active set exactly.
        let few: Vec<SenoneId> = (0..3).map(SenoneId).collect();
        let bounds = weighted.partition_bounds(&m, &few);
        assert_eq!(bounds.first(), Some(&0));
        assert_eq!(bounds.last(), Some(&few.len()));
        assert!(bounds.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn mixed_backends_shard_too() {
        let m = model();
        let ids = all_ids(&m);
        let x: Vec<f32> = (0..m.feature_dim()).map(|d| 0.11 * d as f32).collect();
        let sel = GmmSelectionConfig::default();
        let mut mixed = ShardedScorer::new(vec![
            Box::new(SoftwareScorer::new(sel)) as Box<dyn SenoneScorer>,
            Box::new(SimdScorer::new(sel)) as Box<dyn SenoneScorer>,
        ])
        .unwrap();
        assert_eq!(mixed.num_shards(), 2);
        assert_eq!(mixed.shard_names(), vec!["software", "simd"]);
        assert_eq!(mixed.name(), "sharded");
        mixed.begin_frame(&x);
        let got = mixed.score_senones(&m, &ids, &x).unwrap();
        let mut scalar = SoftwareScorer::new(sel);
        let want = scalar.score_senones(&m, &ids, &x).unwrap();
        for ((ia, sa), (ib, sb)) in want.iter().zip(&got) {
            assert_eq!(ia, ib);
            // Scalar and SIMD agree to float tolerance, so the mixed shard
            // output stays within it as well.
            assert!((sa.raw() - sb.raw()).abs() < 1e-2, "{ia:?}");
        }
        // Software shards keep no hardware report.
        assert!(mixed.finish_utterance().is_none());
    }

    #[test]
    fn per_shard_reports_fold_without_multiplying_frames() {
        let m = model();
        let ids = all_ids(&m);
        let frames = 6;
        let decode_frames = |scorer: &mut dyn SenoneScorer| {
            for f in 0..frames {
                let x: Vec<f32> = (0..m.feature_dim())
                    .map(|d| 0.03 * (f + d) as f32)
                    .collect();
                scorer.begin_frame(&x);
                scorer.score_senones(&m, &ids, &x).unwrap();
                scorer.end_frame(2, 1);
            }
        };
        let mut single = SocScorer::new(SocConfig::default()).unwrap();
        decode_frames(&mut single);
        let want = single.finish_utterance().unwrap();

        let mut sharded = soc_shards(4);
        decode_frames(&mut sharded);
        let got = sharded.finish_utterance().unwrap();

        // Same audio stream: frames and audio seconds match the unsharded
        // run; the scored work is the same total, split across shards.
        assert_eq!(got.frames, want.frames);
        assert!((got.energy.audio_seconds - want.energy.audio_seconds).abs() < 1e-12);
        assert_eq!(got.senones_scored, want.senones_scored);
        // The merged report carries the per-shard senone balance.
        assert_eq!(got.shard_senones.len(), 4);
        assert_eq!(got.shard_senones.iter().sum::<u64>(), got.senones_scored);
        let share = got.worst_shard_share().expect("sharded report has a share");
        assert!((0.25..=1.0).contains(&share), "{share}");
        assert!(want.shard_senones.is_empty());
        assert!(want.worst_shard_share().is_none());
        // Each shard carries a quarter of the load, so the sharded machine
        // has per-frame slack the single SoC does not.
        assert!(got.worst_frame_rtf <= want.worst_frame_rtf + 1e-12);
        // A finished scorer serves the next utterance from clean counters.
        let mut second = soc_shards(2);
        decode_frames(&mut second);
        second.finish_utterance().unwrap();
        decode_frames(&mut second);
        let again = second.finish_utterance().unwrap();
        assert_eq!(again.frames, frames);
    }

    #[test]
    fn hmm_updates_round_robin_across_shards() {
        let m = model();
        let t = m.transitions();
        let n = t.num_states();
        let prev = vec![LogProb::new(-2.0); n];
        let obs = vec![LogProb::new(-1.0); n];
        let mut sharded = soc_shards(3);
        for _ in 0..6 {
            sharded.step_hmm(&prev, LogProb::zero(), t, &obs).unwrap();
        }
        sharded.dma_fetch(128);
        sharded.end_frame(6, 2);
        let report = sharded.finish_utterance().unwrap();
        // 6 updates over 3 shards: every shard stepped twice, and the merged
        // report sees all six.
        assert_eq!(report.hmm_updates, 6);
        // reset() clears the round-robin cursor and the shards' counters:
        // finishing straight away yields a zero-frame report.
        sharded.reset();
        let cleared = sharded.finish_utterance().unwrap();
        assert_eq!(cleared.frames, 0);
        assert_eq!(cleared.hmm_updates, 0);
    }

    #[test]
    fn config_built_sharded_backend_matches_direct_construction() {
        let sel = GmmSelectionConfig::default();
        let kind = ScoringBackendKind::Sharded {
            shards: 2,
            inner: Box::new(ScoringBackendKind::Hardware(SocConfig::default())),
            tuning: ShardTuning::default(),
        };
        let mut scorer = kind.build_scorer(&sel).unwrap();
        assert_eq!(scorer.name(), "sharded");
        let m = model();
        let x = vec![0.1f32; m.feature_dim()];
        scorer.begin_frame(&x);
        let got = scorer.score_senones(&m, &all_ids(&m), &x).unwrap();
        assert_eq!(got.len(), m.senones().len());
        assert!(scorer.finish_utterance().is_some());
        // Zero shards is rejected at construction.
        let bad = ScoringBackendKind::Sharded {
            shards: 0,
            inner: Box::new(ScoringBackendKind::Software),
            tuning: ShardTuning::default(),
        };
        assert!(bad.build_scorer(&sel).is_err());
        // Zero min_parallel_senones is rejected by validation and build.
        let bad_tuning = ScoringBackendKind::Sharded {
            shards: 2,
            inner: Box::new(ScoringBackendKind::Software),
            tuning: ShardTuning {
                min_parallel_senones: 0,
                ..ShardTuning::default()
            },
        };
        assert!(bad_tuning.validate().is_err());
        assert!(bad_tuning.build_scorer(&sel).is_err());
    }
}
