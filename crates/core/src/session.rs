//! Incremental decoding sessions: the real-time counterpart of
//! [`Recognizer::decode_features`].
//!
//! The paper's SoC is a *real-time* recognizer — feature frames arrive one
//! 10 ms hop at a time and the hardware keeps up.  A [`DecodeSession`] is
//! that regime as an API: open a session, push feature chunks of any size as
//! they arrive, read a [`PartialHypothesis`] between chunks, and [`finish`]
//! for the full [`DecodeResult`].  The session drives the exact same
//! per-frame search step as the offline path
//! ([`TokenPassingSearch::step`](crate::TokenPassingSearch::step)), so the
//! final hypothesis, score and statistics are identical to calling
//! [`Recognizer::decode_features`] on the concatenated input — the invariant
//! the workspace's `tests/stream.rs` property test pins on every backend.
//!
//! Two flavours share one engine (`SessionCore`, private):
//!
//! - [`DecodeSession`] borrows its [`Recognizer`] — the natural shape for a
//!   caller that owns the recogniser on the same thread.
//! - [`SharedDecodeSession`] holds an [`Arc<Recognizer>`] — an **owned**
//!   decode-task handle with no lifetime, for worker threads that serve many
//!   models and must pin each session to the model version it was opened on
//!   (the serve layer's hot-swap invariant).
//!
//! [`finish`]: DecodeSession::finish

use crate::phone_decode::PhoneDecoder;
use crate::recognizer::{DecodeResult, Recognizer};
use crate::search::{SearchState, TokenPassingSearch};
use crate::DecodeError;
use asr_lexicon::WordId;
use std::sync::Arc;

/// A snapshot of what the search believes so far, surfaced between chunks.
///
/// Partials are **prefix-consistent by construction**: each snapshot's word
/// sequence extends the previous snapshot's (the session holds its last
/// partial while the search is mid-revision instead of retracting words),
/// and `frames` grows monotonically.  The final result of
/// [`DecodeSession::finish`] is produced by the global best path search and
/// may differ from the last partial — partials are a live preview, not a
/// commitment.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PartialHypothesis {
    /// Feature frames consumed when this snapshot was taken.
    pub frames: usize,
    /// Word identifiers recognised so far.
    pub words: Vec<WordId>,
    /// Word spellings recognised so far.
    pub text: Vec<String>,
}

impl PartialHypothesis {
    /// The partial as a single space-separated string.
    pub fn to_sentence(&self) -> String {
        self.text.join(" ")
    }
}

/// The session engine shared by both session flavours: everything an
/// in-flight incremental decode owns *except* the recogniser handle.  Every
/// method takes the recogniser explicitly, so the wrappers decide whether it
/// is borrowed ([`DecodeSession`]) or `Arc`-held ([`SharedDecodeSession`]).
#[derive(Debug)]
struct SessionCore {
    phone_decoder: PhoneDecoder,
    state: SearchState,
    partial_words: Vec<WordId>,
}

fn search(recognizer: &Recognizer) -> TokenPassingSearch<'_> {
    TokenPassingSearch::new(
        recognizer.model(),
        recognizer.network(),
        recognizer.language_model(),
        recognizer.config(),
    )
}

impl SessionCore {
    fn begin(recognizer: &Recognizer, mut phone_decoder: PhoneDecoder) -> Self {
        phone_decoder.begin_utterance();
        SessionCore {
            phone_decoder,
            state: search(recognizer).begin(),
            partial_words: Vec::new(),
        }
    }

    fn frames(&self) -> usize {
        self.state.frames()
    }

    fn step_frame(&mut self, recognizer: &Recognizer, feature: &[f32]) -> Result<(), DecodeError> {
        search(recognizer).step(&mut self.state, &mut self.phone_decoder, feature)?;
        // Hold the previous partial while the search revises; only ever
        // extend, so partials stay prefix-consistent.
        let best = self.state.best_words();
        if best.len() > self.partial_words.len() && best.starts_with(&self.partial_words) {
            self.partial_words = best.to_vec();
        }
        Ok(())
    }

    fn push_chunk(
        &mut self,
        recognizer: &Recognizer,
        frames: &[Vec<f32>],
    ) -> Result<(), DecodeError> {
        for frame in frames {
            self.step_frame(recognizer, frame)?;
        }
        Ok(())
    }

    fn partial(&self, recognizer: &Recognizer) -> PartialHypothesis {
        let spelled = self
            .partial_words
            .iter()
            .map(|&w| {
                recognizer
                    .dictionary()
                    .spelling(w)
                    .unwrap_or("<unk>")
                    .to_string()
            })
            .collect();
        PartialHypothesis {
            frames: self.state.frames(),
            words: self.partial_words.clone(),
            text: spelled,
        }
    }

    fn finish_parts(
        mut self,
        recognizer: &Recognizer,
    ) -> (Result<DecodeResult, DecodeError>, PhoneDecoder) {
        if self.state.frames() == 0 {
            // Matches the offline path for empty input: no search ran, no
            // hardware report (the backend scored nothing).
            self.phone_decoder.begin_utterance();
            return (Ok(DecodeResult::empty()), self.phone_decoder);
        }
        let outcome = search(recognizer).finish(self.state);
        let hardware = self.phone_decoder.finish_utterance();
        (
            Ok(recognizer.assemble_result(outcome, hardware)),
            self.phone_decoder,
        )
    }

    fn cancel(mut self) -> PhoneDecoder {
        // Abandon the search state and hard-reset the backend's
        // per-utterance state without producing a report — the same re-arm
        // the zero-frame finish path uses, so a cancelled decoder is
        // indistinguishable from a fresh one.
        self.phone_decoder.begin_utterance();
        self.phone_decoder
    }
}

/// An in-flight incremental decode of one utterance.
///
/// Created by [`Recognizer::begin_session`]; feed it frames with
/// [`DecodeSession::step_frame`] / [`DecodeSession::push_chunk`] and close it
/// with [`DecodeSession::finish`].  Chunk boundaries are invisible to the
/// search: any chunking of the same frames produces the same result.
///
/// # Example
///
/// ```
/// use asr_core::{DecoderConfig, Recognizer};
/// use asr_corpus::{TaskConfig, TaskGenerator};
///
/// let task = TaskGenerator::new(5).generate(&TaskConfig::tiny()).unwrap();
/// let recognizer = Recognizer::new(
///     task.acoustic_model.clone(),
///     task.dictionary.clone(),
///     task.language_model.clone(),
///     DecoderConfig::simd(),
/// )
/// .unwrap();
/// let (features, reference) = task.synthesize_utterance(2, 0.2, 1);
///
/// let mut session = recognizer.begin_session().unwrap();
/// for chunk in features.chunks(3) {
///     session.push_chunk(chunk).unwrap();
/// }
/// let streamed = session.finish().unwrap();
/// let offline = recognizer.decode_features(&features).unwrap();
/// assert_eq!(streamed.hypothesis.words, reference);
/// assert_eq!(streamed.hypothesis, offline.hypothesis);
/// ```
#[derive(Debug)]
pub struct DecodeSession<'r> {
    recognizer: &'r Recognizer,
    core: SessionCore,
}

impl Recognizer {
    /// Opens an incremental decode session on the configured backend.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::InvalidConfig`] if the backend configuration is
    /// invalid.
    pub fn begin_session(&self) -> Result<DecodeSession<'_>, DecodeError> {
        Ok(self.begin_session_with(self.phone_decoder()?))
    }

    /// Opens an incremental decode session around a caller-supplied phone
    /// decoder — the streaming counterpart of
    /// [`Recognizer::decode_features_with`], for custom backends and for
    /// reusing one warmed decoder across consecutive sessions (reclaim it
    /// with [`DecodeSession::finish_parts`]).
    pub fn begin_session_with(&self, phone_decoder: PhoneDecoder) -> DecodeSession<'_> {
        DecodeSession {
            recognizer: self,
            core: SessionCore::begin(self, phone_decoder),
        }
    }
}

impl<'r> DecodeSession<'r> {
    /// The recogniser this session decodes against.
    pub fn recognizer(&self) -> &'r Recognizer {
        self.recognizer
    }

    /// Feature frames consumed so far.
    pub fn frames(&self) -> usize {
        self.core.frames()
    }

    /// Consumes one feature frame.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::DimensionMismatch`] for a frame of the wrong
    /// dimension, or propagates backend errors.  The session stays usable
    /// after a dimension error (the bad frame was rejected before touching
    /// the search).
    pub fn step_frame(&mut self, feature: &[f32]) -> Result<(), DecodeError> {
        self.core.step_frame(self.recognizer, feature)
    }

    /// Consumes a chunk of feature frames (any size, including empty).
    ///
    /// # Errors
    ///
    /// Fails on the first frame that fails to decode; earlier frames of the
    /// chunk have been consumed.
    pub fn push_chunk(&mut self, frames: &[Vec<f32>]) -> Result<(), DecodeError> {
        self.core.push_chunk(self.recognizer, frames)
    }

    /// The current partial hypothesis (words completed so far).
    pub fn partial(&self) -> PartialHypothesis {
        self.core.partial(self.recognizer)
    }

    /// Closes the session: runs the global best path search over the lattice
    /// and returns the full [`DecodeResult`].  A session that consumed zero
    /// frames yields [`DecodeResult::empty`].
    ///
    /// # Errors
    ///
    /// Currently infallible in practice; the `Result` keeps the signature
    /// stable for backends that may fail on utterance close.
    pub fn finish(self) -> Result<DecodeResult, DecodeError> {
        self.finish_parts().0
    }

    /// Like [`DecodeSession::finish`], but also hands back the phone decoder
    /// so one warmed backend can serve the next session
    /// (via [`Recognizer::begin_session_with`]).
    pub fn finish_parts(self) -> (Result<DecodeResult, DecodeError>, PhoneDecoder) {
        self.core.finish_parts(self.recognizer)
    }

    /// Abandons the utterance without running the final best-path search
    /// (barge-in / client cancellation): everything decoded so far is
    /// discarded and the phone decoder is handed back, already re-armed for
    /// the next utterance — no [`UtteranceReport`](asr_hw::UtteranceReport)
    /// is produced for the abandoned frames.
    pub fn cancel(self) -> PhoneDecoder {
        self.core.cancel()
    }
}

/// An in-flight incremental decode that **owns** its recogniser handle.
///
/// Identical in behaviour to [`DecodeSession`] (same engine, same
/// stream==offline invariant), but the recogniser travels as an
/// [`Arc<Recognizer>`] instead of a borrow, so the session has no lifetime
/// and can be stored in long-lived worker state, moved across threads, or
/// outlive the place that opened it.  This is the decode-task handle the
/// serve layer's workers hold: a session opened on one model *version* keeps
/// decoding that exact version even if the registry has since hot-swapped
/// the name to a newer one — the `Arc` pins it.
///
/// # Example
///
/// ```
/// use asr_core::{DecoderConfig, Recognizer, SharedDecodeSession};
/// use asr_corpus::{TaskConfig, TaskGenerator};
/// use std::sync::Arc;
///
/// let task = TaskGenerator::new(5).generate(&TaskConfig::tiny()).unwrap();
/// let recognizer = Arc::new(
///     Recognizer::new(
///         task.acoustic_model.clone(),
///         task.dictionary.clone(),
///         task.language_model.clone(),
///         DecoderConfig::simd(),
///     )
///     .unwrap(),
/// );
/// let (features, reference) = task.synthesize_utterance(2, 0.2, 1);
///
/// let mut session = SharedDecodeSession::begin(Arc::clone(&recognizer)).unwrap();
/// // No lifetime: the session may move to another thread, and dropping (or
/// // even replacing) `recognizer` would not invalidate it.
/// session.push_chunk(&features).unwrap();
/// let streamed = session.finish().unwrap();
/// assert_eq!(streamed.hypothesis.words, reference);
/// assert_eq!(
///     streamed.hypothesis,
///     recognizer.decode_features(&features).unwrap().hypothesis,
/// );
/// ```
#[derive(Debug)]
pub struct SharedDecodeSession {
    recognizer: Arc<Recognizer>,
    core: SessionCore,
}

impl SharedDecodeSession {
    /// Opens an owned incremental decode session on the recogniser's
    /// configured backend.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::InvalidConfig`] if the backend configuration is
    /// invalid.
    pub fn begin(recognizer: Arc<Recognizer>) -> Result<Self, DecodeError> {
        let phone_decoder = recognizer.phone_decoder()?;
        Ok(Self::begin_with(recognizer, phone_decoder))
    }

    /// Opens an owned session around a caller-supplied phone decoder — the
    /// `Arc` counterpart of [`Recognizer::begin_session_with`], for reusing
    /// one warmed decoder across consecutive sessions (reclaim it with
    /// [`SharedDecodeSession::finish_parts`]).
    pub fn begin_with(recognizer: Arc<Recognizer>, phone_decoder: PhoneDecoder) -> Self {
        let core = SessionCore::begin(&recognizer, phone_decoder);
        SharedDecodeSession { recognizer, core }
    }

    /// The recogniser this session decodes against (and keeps alive).
    pub fn recognizer(&self) -> &Arc<Recognizer> {
        &self.recognizer
    }

    /// Feature frames consumed so far.
    pub fn frames(&self) -> usize {
        self.core.frames()
    }

    /// Consumes one feature frame; see [`DecodeSession::step_frame`].
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::DimensionMismatch`] for a frame of the wrong
    /// dimension, or propagates backend errors.  The session stays usable
    /// after a dimension error.
    pub fn step_frame(&mut self, feature: &[f32]) -> Result<(), DecodeError> {
        self.core.step_frame(&self.recognizer, feature)
    }

    /// Consumes a chunk of feature frames (any size, including empty).
    ///
    /// # Errors
    ///
    /// Fails on the first frame that fails to decode; earlier frames of the
    /// chunk have been consumed.
    pub fn push_chunk(&mut self, frames: &[Vec<f32>]) -> Result<(), DecodeError> {
        self.core.push_chunk(&self.recognizer, frames)
    }

    /// The current partial hypothesis (words completed so far).
    pub fn partial(&self) -> PartialHypothesis {
        self.core.partial(&self.recognizer)
    }

    /// Closes the session; see [`DecodeSession::finish`].
    ///
    /// # Errors
    ///
    /// Currently infallible in practice; the `Result` keeps the signature
    /// stable for backends that may fail on utterance close.
    pub fn finish(self) -> Result<DecodeResult, DecodeError> {
        self.finish_parts().0
    }

    /// Like [`SharedDecodeSession::finish`], but also hands back the phone
    /// decoder so one warmed backend can serve the next session.
    pub fn finish_parts(self) -> (Result<DecodeResult, DecodeError>, PhoneDecoder) {
        self.core.finish_parts(&self.recognizer)
    }

    /// Abandons the utterance without a final result; see
    /// [`DecodeSession::cancel`].  Releases the `Arc` on the recogniser and
    /// hands back the re-armed phone decoder.
    pub fn cancel(self) -> PhoneDecoder {
        self.core.cancel()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DecoderConfig;
    use asr_corpus::{SyntheticTask, TaskConfig, TaskGenerator};

    fn task() -> SyntheticTask {
        TaskGenerator::new(31)
            .generate(&TaskConfig::tiny())
            .unwrap()
    }

    fn recognizer(task: &SyntheticTask, config: DecoderConfig) -> Recognizer {
        Recognizer::new(
            task.acoustic_model.clone(),
            task.dictionary.clone(),
            task.language_model.clone(),
            config,
        )
        .unwrap()
    }

    #[test]
    fn session_matches_offline_decode_frame_by_frame() {
        let task = task();
        let rec = recognizer(&task, DecoderConfig::software());
        let (features, reference) = task.synthesize_utterance(2, 0.2, 3);
        let offline = rec.decode_features(&features).unwrap();

        let mut session = rec.begin_session().unwrap();
        for frame in &features {
            session.step_frame(frame).unwrap();
        }
        assert_eq!(session.frames(), features.len());
        let streamed = session.finish().unwrap();
        assert_eq!(streamed.hypothesis, offline.hypothesis);
        assert_eq!(streamed.live_hypothesis, offline.live_hypothesis);
        assert_eq!(streamed.best_score.raw(), offline.best_score.raw());
        assert_eq!(streamed.stats, offline.stats);
        assert_eq!(streamed.lattice.len(), offline.lattice.len());
        assert_eq!(streamed.lattice.num_frames(), offline.lattice.num_frames());
        assert_eq!(streamed.hypothesis.words, reference);
    }

    #[test]
    fn hardware_session_reports_match_offline() {
        let task = task();
        let rec = recognizer(&task, DecoderConfig::hardware(2));
        let (features, _) = task.synthesize_utterance(1, 0.2, 9);
        let offline = rec.decode_features(&features).unwrap();
        let mut session = rec.begin_session().unwrap();
        session.push_chunk(&features).unwrap();
        let streamed = session.finish().unwrap();
        let (a, b) = (streamed.hardware.unwrap(), offline.hardware.unwrap());
        assert_eq!(a.frames, b.frames);
        assert_eq!(a.senones_scored, b.senones_scored);
        assert_eq!(a.hmm_updates, b.hmm_updates);
    }

    #[test]
    fn partials_grow_monotonically_and_stay_prefixes() {
        let task = task();
        let rec = recognizer(&task, DecoderConfig::simd());
        let (features, _) = task.synthesize_utterance(3, 0.2, 17);
        let mut session = rec.begin_session().unwrap();
        let mut previous = PartialHypothesis::default();
        for chunk in features.chunks(2) {
            session.push_chunk(chunk).unwrap();
            let partial = session.partial();
            assert!(partial.frames >= previous.frames, "frames must be monotone");
            assert!(
                partial.words.starts_with(&previous.words),
                "{:?} must extend {:?}",
                partial.words,
                previous.words
            );
            previous = partial;
        }
        // A multi-word utterance surfaces at least one word before finish.
        assert!(!previous.words.is_empty());
        assert_eq!(previous.words.len(), previous.text.len());
        assert!(!previous.to_sentence().is_empty());
    }

    #[test]
    fn zero_frame_session_is_the_typed_empty_result() {
        let task = task();
        let rec = recognizer(&task, DecoderConfig::software());
        let session = rec.begin_session().unwrap();
        assert_eq!(session.partial(), PartialHypothesis::default());
        let result = session.finish().unwrap();
        assert!(result.is_empty());
        assert!(result.hypothesis.words.is_empty());
        assert!(result.best_score.is_zero());
    }

    #[test]
    fn a_rejected_frame_leaves_the_session_usable() {
        let task = task();
        let rec = recognizer(&task, DecoderConfig::software());
        let (features, reference) = task.synthesize_utterance(1, 0.2, 4);
        let mut session = rec.begin_session().unwrap();
        let bad = vec![0.0f32; task.acoustic_model.feature_dim() + 1];
        assert!(matches!(
            session.step_frame(&bad),
            Err(DecodeError::DimensionMismatch { .. })
        ));
        session.push_chunk(&features).unwrap();
        assert_eq!(session.finish().unwrap().hypothesis.words, reference);
    }

    #[test]
    fn finish_parts_recycles_the_decoder_across_sessions() {
        let task = task();
        let rec = recognizer(&task, DecoderConfig::simd());
        let (features, reference) = task.synthesize_utterance(1, 0.2, 6);
        let mut decoder = rec.phone_decoder().unwrap();
        for _ in 0..2 {
            let mut session = rec.begin_session_with(decoder);
            session.push_chunk(&features).unwrap();
            let (result, recycled) = session.finish_parts();
            assert_eq!(result.unwrap().hypothesis.words, reference);
            decoder = recycled;
        }
    }

    #[test]
    fn shared_session_matches_the_borrowed_session_and_outlives_its_opener() {
        let task = task();
        let rec = Arc::new(recognizer(&task, DecoderConfig::hardware(2)));
        let (features, reference) = task.synthesize_utterance(2, 0.2, 12);
        let offline = rec.decode_features(&features).unwrap();

        // Open on this thread, decode on another: no lifetime ties the
        // session to the opener's stack frame.
        let mut session = SharedDecodeSession::begin(Arc::clone(&rec)).unwrap();
        assert!(Arc::ptr_eq(session.recognizer(), &rec));
        let streamed = std::thread::spawn(move || {
            for chunk in features.chunks(3) {
                session.push_chunk(chunk).unwrap();
            }
            assert_eq!(session.partial().frames, session.frames());
            session.finish().unwrap()
        })
        .join()
        .unwrap();
        assert_eq!(streamed.hypothesis.words, reference);
        assert_eq!(streamed.hypothesis, offline.hypothesis);
        assert_eq!(streamed.best_score.raw(), offline.best_score.raw());
        let (a, b) = (streamed.hardware.unwrap(), offline.hardware.unwrap());
        assert_eq!(a.frames, b.frames);
        assert_eq!(a.senones_scored, b.senones_scored);
    }

    #[test]
    fn cancel_hands_back_a_decoder_that_decodes_the_next_utterance_cleanly() {
        let task = task();
        let (features, reference) = task.synthesize_utterance(2, 0.2, 8);
        for config in [DecoderConfig::software(), DecoderConfig::hardware(2)] {
            let rec = recognizer(&task, config);
            let offline = rec.decode_features(&features).unwrap();

            // Decode half an utterance, then abandon it mid-flight.
            let mut session = rec.begin_session().unwrap();
            session.push_chunk(&features[..features.len() / 2]).unwrap();
            assert!(session.frames() > 0);
            let decoder = session.cancel();

            // The recycled decoder behaves exactly like a fresh one — no
            // residue from the abandoned frames (hardware counters included).
            let mut session = rec.begin_session_with(decoder);
            session.push_chunk(&features).unwrap();
            let streamed = session.finish().unwrap();
            assert_eq!(streamed.hypothesis.words, reference);
            assert_eq!(streamed.hypothesis, offline.hypothesis);
            assert_eq!(streamed.best_score.raw(), offline.best_score.raw());
            match (&streamed.hardware, &offline.hardware) {
                (Some(a), Some(b)) => {
                    assert_eq!(a.frames, b.frames);
                    assert_eq!(a.senones_scored, b.senones_scored);
                }
                (None, None) => {}
                other => panic!("hardware report mismatch: {other:?}"),
            }
        }

        // The shared (Arc) wrapper exposes the same seam.
        let rec = Arc::new(recognizer(&task, DecoderConfig::simd()));
        let mut session = SharedDecodeSession::begin(Arc::clone(&rec)).unwrap();
        session.push_chunk(&features[..3]).unwrap();
        let decoder = session.cancel();
        let mut session = SharedDecodeSession::begin_with(Arc::clone(&rec), decoder);
        session.push_chunk(&features).unwrap();
        assert_eq!(session.finish().unwrap().hypothesis.words, reference);
    }

    #[test]
    fn shared_session_recycles_decoders_and_handles_empty_input() {
        let task = task();
        let rec = Arc::new(recognizer(&task, DecoderConfig::simd()));
        let (features, reference) = task.synthesize_utterance(1, 0.2, 6);

        // Zero frames → typed empty result, decoder handed back.
        let empty = SharedDecodeSession::begin(Arc::clone(&rec)).unwrap();
        let (result, decoder) = empty.finish_parts();
        assert!(result.unwrap().is_empty());

        let mut session = SharedDecodeSession::begin_with(Arc::clone(&rec), decoder);
        session.push_chunk(&features).unwrap();
        assert_eq!(session.finish().unwrap().hypothesis.words, reference);
    }
}
