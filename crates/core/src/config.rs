//! Decoder configuration.

use crate::scorer::{SenoneScorer, SimdScorer, SocScorer, SoftwareScorer};
use crate::shard::ShardedScorer;
use crate::DecodeError;
use asr_hw::SocConfig;

/// Default active-set size below which a sharded frame is scored on the
/// calling thread instead of being dispatched to worker threads (see
/// [`ShardTuning::min_parallel_senones`]).
pub const DEFAULT_MIN_PARALLEL_SENONES: usize = 8;

/// How a [`ShardedScorer`] splits each frame's active-senone set into
/// contiguous per-shard slices.
///
/// Either way every senone is scored by exactly one shard with unchanged
/// arithmetic, so the choice is invisible in scores, hypotheses and decode
/// statistics — only the per-shard load (and therefore the merged report's
/// worst-shard figures and wall-clock) changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardPartition {
    /// Equal senone *counts* per shard (the historical split).
    EqualSplit,
    /// Equal estimated *cost* per shard: each senone is weighted by its
    /// mixture component count, so shards receive balanced work even when
    /// component counts vary across the senone inventory.  Falls back to the
    /// equal split automatically when every senone costs the same.
    #[default]
    CostWeighted,
}

/// How a [`ShardedScorer`] gets per-frame work onto its non-inline shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardDispatch {
    /// Long-lived worker threads (at most one spawn per shard per
    /// utterance), fed per-frame jobs over channels.  This is the
    /// low-overhead production path.
    #[default]
    Pooled,
    /// A fresh scoped thread per shard per scored frame (~10 µs each) — the
    /// historical dispatch, kept as a baseline for the `shard_scaling`
    /// bench and for callers that must not hold threads between frames.
    ScopedSpawn,
}

/// Tuning knobs of a sharded backend, grouped so
/// [`ScoringBackendKind::Sharded`] construction sites can say
/// `ShardTuning::default()` and stay source-compatible as knobs grow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardTuning {
    /// Active-set partitioning policy.
    pub partition: ShardPartition,
    /// Worker dispatch mechanism.
    pub dispatch: ShardDispatch,
    /// Below this many active senones a frame is scored on the calling
    /// thread, shard by shard: a tiny frame's dispatch overhead would
    /// otherwise dominate its scoring cost.  Must be at least 1.
    pub min_parallel_senones: usize,
}

impl Default for ShardTuning {
    fn default() -> Self {
        ShardTuning {
            partition: ShardPartition::default(),
            dispatch: ShardDispatch::default(),
            min_parallel_senones: DEFAULT_MIN_PARALLEL_SENONES,
        }
    }
}

impl ShardTuning {
    /// Validates the tuning knobs.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::InvalidConfig`] when `min_parallel_senones`
    /// is zero (the threshold is compared with `<`, so 1 means "always
    /// eligible", and 0 would be an untestable alias for it).
    pub fn validate(&self) -> Result<(), DecodeError> {
        if self.min_parallel_senones == 0 {
            return Err(DecodeError::InvalidConfig(
                "min_parallel_senones must be >= 1".into(),
            ));
        }
        Ok(())
    }
}

/// Which built-in backend scores senones and advances HMMs.
///
/// This is a *configuration descriptor*: it names one of the stock
/// [`SenoneScorer`] implementations and is turned into a live trait object by
/// [`ScoringBackendKind::build_scorer`].  Backends beyond these three plug in
/// directly as `Box<dyn SenoneScorer>` through
/// [`Recognizer::decode_features_with`] — no enum variant needed.
///
/// [`Recognizer::decode_features_with`]: crate::Recognizer::decode_features_with
//
// `SocConfig` is much larger than the unit variants, but a `DecoderConfig` is
// built once per recogniser, never stored in bulk, so boxing it would only
// complicate every construction site.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum ScoringBackendKind {
    /// The cycle-accurate hardware model (`asr-hw`): OP units + Viterbi units,
    /// flash/DMA traffic and power accounting.  This is the paper's system.
    Hardware(SocConfig),
    /// A pure-software floating-point reference (no cycle/power accounting in
    /// the decode loop; the baseline crate wraps this with a host-CPU cost
    /// model for the related-work comparison).
    Software,
    /// The batching-aware SIMD-style software scorer: flattens the acoustic
    /// model into a contiguous parameter arena (built once, reused across a
    /// whole [`decode_batch`] stream) and scores with vectorisable blocked
    /// loops.
    ///
    /// [`decode_batch`]: crate::Recognizer::decode_batch
    Simd,
    /// A sharded scale-out scorer ([`crate::ShardedScorer`]):
    /// `shards` instances of `inner`, each scoring a contiguous slice of
    /// every frame's active-senone set — shard 0 on the calling thread, the
    /// rest on the persistent per-utterance worker pool (or per-frame scoped
    /// threads, see [`ShardTuning`]) — with the per-shard hardware reports
    /// folded by
    /// [`UtteranceReport::merge_parallel`](asr_hw::UtteranceReport::merge_parallel).
    /// Results are identical to running `inner` unsharded; only throughput
    /// and the report's shape change.
    Sharded {
        /// Number of inner scorers (≥ 1).
        shards: usize,
        /// The backend each shard runs (nesting is allowed but pointless).
        inner: Box<ScoringBackendKind>,
        /// Partition / dispatch / threshold knobs
        /// (`ShardTuning::default()` for the production pool).
        tuning: ShardTuning,
    },
}

impl Default for ScoringBackendKind {
    fn default() -> Self {
        ScoringBackendKind::Hardware(SocConfig::default())
    }
}

impl ScoringBackendKind {
    /// Builds a live scorer for this backend.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::InvalidConfig`] if the SoC configuration is
    /// invalid.
    pub fn build_scorer(
        &self,
        selection: &GmmSelectionConfig,
    ) -> Result<Box<dyn SenoneScorer>, DecodeError> {
        match self {
            ScoringBackendKind::Hardware(cfg) => Ok(Box::new(SocScorer::new(cfg.clone())?)),
            ScoringBackendKind::Software => Ok(Box::new(SoftwareScorer::new(*selection))),
            ScoringBackendKind::Simd => Ok(Box::new(SimdScorer::new(*selection))),
            ScoringBackendKind::Sharded {
                shards,
                inner,
                tuning,
            } => {
                tuning.validate()?;
                let built = (0..*shards)
                    .map(|_| inner.build_scorer(selection))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Box::new(ShardedScorer::new(built)?.with_tuning(*tuning)))
            }
        }
    }

    /// Validates the backend descriptor (recursively for sharded backends).
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::InvalidConfig`] for an invalid SoC
    /// configuration, a zero shard count or invalid shard tuning.
    pub fn validate(&self) -> Result<(), DecodeError> {
        match self {
            ScoringBackendKind::Hardware(soc) => soc
                .validate()
                .map_err(|e| DecodeError::InvalidConfig(e.to_string())),
            ScoringBackendKind::Software | ScoringBackendKind::Simd => Ok(()),
            ScoringBackendKind::Sharded {
                shards,
                inner,
                tuning,
            } => {
                if *shards == 0 {
                    return Err(DecodeError::InvalidConfig(
                        "a sharded backend needs at least one shard".into(),
                    ));
                }
                tuning.validate()?;
                inner.validate()
            }
        }
    }
}

/// The four-layer fast-GMM-computation scheme of Chan et al. that the paper's
/// architecture "adapts to".  Each layer skips work at a different
/// granularity; Conditional Down Sampling (the frame layer) is the one the
/// paper highlights as having "the potential to cut the power usage by a
/// considerable margin".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GmmSelectionConfig {
    /// Frame layer — Conditional Down Sampling: reuse the previous frame's
    /// senone scores when the acoustics are stable, rescoring at least every
    /// `cds_period` frames (1 = off). The *condition* is what keeps this
    /// cheap trick accurate: frames are only skipped while the feature vector
    /// stays within [`GmmSelectionConfig::cds_threshold`] of the last scored
    /// one, so phone transitions are always rescored.
    pub cds_period: usize,
    /// Mean squared per-dimension distance between the current feature vector
    /// and the last fully scored one below which a CDS-eligible frame may be
    /// skipped. Calibrated so that frames within one HMM state (emission
    /// noise) skip while state/phone transitions rescore.
    pub cds_threshold: f32,
    /// GMM layer: only senones requested by the word-decode feedback are
    /// scored at all (this is the paper's own feedback mechanism; always on in
    /// the real system but can be disabled to measure its effect).
    pub senone_feedback: bool,
    /// Gaussian layer: evaluate only the best-scoring mixture component
    /// instead of the full log-sum (a common approximation).
    pub best_component_only: bool,
    /// Component layer: evaluate only the first `max_dims` feature dimensions
    /// of each Gaussian (`None` = all), a dimension-truncation shortcut.
    pub max_dims: Option<usize>,
}

impl Default for GmmSelectionConfig {
    fn default() -> Self {
        GmmSelectionConfig {
            cds_period: 1,
            cds_threshold: 1.0,
            senone_feedback: true,
            best_component_only: false,
            max_dims: None,
        }
    }
}

impl GmmSelectionConfig {
    /// All four layers disabled except the architectural senone feedback.
    pub fn baseline() -> Self {
        Self::default()
    }

    /// Conditional Down Sampling at the given period, other layers default.
    pub fn with_cds(period: usize) -> Self {
        GmmSelectionConfig {
            cds_period: period.max(1),
            ..Self::default()
        }
    }
}

/// Configuration of the token-passing decoder.
#[derive(Debug, Clone, PartialEq)]
pub struct DecoderConfig {
    /// Scoring backend.
    pub backend: ScoringBackendKind,
    /// Main beam: active HMM instances whose best state score falls more than
    /// this (in natural-log units) below the frame's best are pruned.
    pub beam: f32,
    /// Word-end beam (tighter than the main beam, as usual).
    pub word_beam: f32,
    /// Hard cap on simultaneously active HMM instances (histogram pruning).
    pub max_active_hmms: usize,
    /// Language-model weight applied to LM log probabilities.
    pub lm_weight: f32,
    /// Word insertion penalty (natural-log, negative discourages insertions).
    pub word_insertion_penalty: f32,
    /// Fast-GMM-computation layers.
    pub gmm_selection: GmmSelectionConfig,
}

impl Default for DecoderConfig {
    fn default() -> Self {
        DecoderConfig {
            backend: ScoringBackendKind::default(),
            beam: 60.0,
            word_beam: 40.0,
            max_active_hmms: 2_000,
            lm_weight: 4.0,
            word_insertion_penalty: -1.0,
            gmm_selection: GmmSelectionConfig::default(),
        }
    }
}

impl DecoderConfig {
    /// A configuration using the software reference backend.
    pub fn software() -> Self {
        DecoderConfig {
            backend: ScoringBackendKind::Software,
            ..Self::default()
        }
    }

    /// A configuration using the batching-aware SIMD-style software backend.
    pub fn simd() -> Self {
        DecoderConfig {
            backend: ScoringBackendKind::Simd,
            ..Self::default()
        }
    }

    /// A configuration using the hardware model with `n` accelerator
    /// structures.
    pub fn hardware(num_structures: usize) -> Self {
        DecoderConfig {
            backend: ScoringBackendKind::Hardware(SocConfig {
                num_structures,
                ..SocConfig::default()
            }),
            ..Self::default()
        }
    }

    /// A configuration sharding the active-senone set across `shards`
    /// default-configured SoC instances (the scale-out counterpart of
    /// [`DecoderConfig::hardware`], which scales one SoC *up*).
    pub fn sharded_hardware(shards: usize) -> Self {
        DecoderConfig {
            backend: ScoringBackendKind::Sharded {
                shards,
                inner: Box::new(ScoringBackendKind::Hardware(SocConfig::default())),
                tuning: ShardTuning::default(),
            },
            ..Self::default()
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::InvalidConfig`] for non-positive beams, a zero
    /// instance cap, a non-positive LM weight or an invalid SoC configuration.
    pub fn validate(&self) -> Result<(), DecodeError> {
        if self.beam <= 0.0 || self.word_beam <= 0.0 {
            return Err(DecodeError::InvalidConfig("beams must be positive".into()));
        }
        if self.max_active_hmms == 0 {
            return Err(DecodeError::InvalidConfig("max_active_hmms == 0".into()));
        }
        if self.lm_weight <= 0.0 {
            return Err(DecodeError::InvalidConfig(
                "lm_weight must be positive".into(),
            ));
        }
        if self.gmm_selection.cds_period == 0 {
            return Err(DecodeError::InvalidConfig("cds_period must be >= 1".into()));
        }
        if !self.gmm_selection.cds_threshold.is_finite() || self.gmm_selection.cds_threshold < 0.0 {
            return Err(DecodeError::InvalidConfig(
                "cds_threshold must be finite and non-negative".into(),
            ));
        }
        self.backend.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        DecoderConfig::default().validate().unwrap();
        DecoderConfig::software().validate().unwrap();
        DecoderConfig::simd().validate().unwrap();
        DecoderConfig::hardware(1).validate().unwrap();
        DecoderConfig::hardware(2).validate().unwrap();
        assert!(matches!(
            DecoderConfig::default().backend,
            ScoringBackendKind::Hardware(_)
        ));
    }

    #[test]
    fn every_kind_builds_a_scorer() {
        let sel = GmmSelectionConfig::default();
        for (kind, name) in [
            (ScoringBackendKind::default(), "soc"),
            (ScoringBackendKind::Software, "software"),
            (ScoringBackendKind::Simd, "simd"),
            (
                ScoringBackendKind::Sharded {
                    shards: 2,
                    inner: Box::new(ScoringBackendKind::Simd),
                    tuning: ShardTuning::default(),
                },
                "sharded",
            ),
        ] {
            assert_eq!(kind.build_scorer(&sel).unwrap().name(), name);
        }
    }

    #[test]
    fn sharded_configs_validate_recursively() {
        DecoderConfig::sharded_hardware(4).validate().unwrap();
        let zero = DecoderConfig {
            backend: ScoringBackendKind::Sharded {
                shards: 0,
                inner: Box::new(ScoringBackendKind::Software),
                tuning: ShardTuning::default(),
            },
            ..DecoderConfig::default()
        };
        assert!(zero.validate().is_err());
        // An invalid inner SoC config fails through the shard wrapper.
        let bad_inner = DecoderConfig {
            backend: ScoringBackendKind::Sharded {
                shards: 2,
                inner: Box::new(ScoringBackendKind::Hardware(SocConfig {
                    num_structures: 0,
                    ..SocConfig::default()
                })),
                tuning: ShardTuning::default(),
            },
            ..DecoderConfig::default()
        };
        assert!(bad_inner.validate().is_err());
        assert!(bad_inner
            .backend
            .build_scorer(&GmmSelectionConfig::default())
            .is_err());
    }

    #[test]
    fn nested_sharded_configs_validate_to_any_depth() {
        let nest = |inner: ScoringBackendKind, shards: usize| ScoringBackendKind::Sharded {
            shards,
            inner: Box::new(inner),
            tuning: ShardTuning::default(),
        };
        // Sharded(2, Sharded(2, Simd)) is pointless but legal.
        let valid = DecoderConfig {
            backend: nest(nest(ScoringBackendKind::Simd, 2), 2),
            ..DecoderConfig::default()
        };
        valid.validate().unwrap();
        assert_eq!(
            valid
                .backend
                .build_scorer(&GmmSelectionConfig::default())
                .unwrap()
                .name(),
            "sharded"
        );
        // A zero shard count is rejected at every nesting depth.
        for bad_backend in [
            nest(nest(ScoringBackendKind::Software, 0), 2),
            nest(nest(ScoringBackendKind::Software, 2), 0),
            nest(nest(nest(ScoringBackendKind::Simd, 0), 1), 1),
        ] {
            let bad = DecoderConfig {
                backend: bad_backend,
                ..DecoderConfig::default()
            };
            assert!(bad.validate().is_err(), "{:?}", bad.backend);
        }
        // An invalid SoC leaf fails through two shard wrappers.
        let bad_leaf = DecoderConfig {
            backend: nest(
                nest(
                    ScoringBackendKind::Hardware(SocConfig {
                        num_structures: 0,
                        ..SocConfig::default()
                    }),
                    2,
                ),
                2,
            ),
            ..DecoderConfig::default()
        };
        assert!(bad_leaf.validate().is_err());
    }

    #[test]
    fn invalid_configs_rejected() {
        let c = DecoderConfig {
            beam: 0.0,
            ..DecoderConfig::default()
        };
        assert!(c.validate().is_err());
        let c = DecoderConfig {
            word_beam: -1.0,
            ..DecoderConfig::default()
        };
        assert!(c.validate().is_err());
        let c = DecoderConfig {
            max_active_hmms: 0,
            ..DecoderConfig::default()
        };
        assert!(c.validate().is_err());
        let c = DecoderConfig {
            lm_weight: 0.0,
            ..DecoderConfig::default()
        };
        assert!(c.validate().is_err());
        let mut c = DecoderConfig::default();
        c.gmm_selection.cds_period = 0;
        assert!(c.validate().is_err());
        let mut c = DecoderConfig::default();
        c.gmm_selection.cds_threshold = -0.5;
        assert!(c.validate().is_err());
        let mut c = DecoderConfig::default();
        c.gmm_selection.cds_threshold = f32::NAN;
        assert!(c.validate().is_err());
        let c = DecoderConfig::hardware(0);
        assert!(c.validate().is_err());
    }

    #[test]
    fn gmm_selection_helpers() {
        let base = GmmSelectionConfig::baseline();
        assert_eq!(base.cds_period, 1);
        assert!(base.senone_feedback);
        assert!(!base.best_component_only);
        assert_eq!(base.max_dims, None);
        let cds = GmmSelectionConfig::with_cds(2);
        assert_eq!(cds.cds_period, 2);
        assert_eq!(GmmSelectionConfig::with_cds(0).cds_period, 1);
    }
}
