//! The word lattice produced by the word-decode stage and searched by the
//! global best path stage.
//!
//! "The word decode generates a lattice of probable words spoken. The global
//! best path search iterates over the word lattice and combines the language
//! model to produce the utterance."

use asr_float::LogProb;
use asr_lexicon::{NGramModel, WordId};

/// One word candidate in the lattice: a word hypothesised to span
/// `[start_frame, end_frame]` with a given acoustic score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WordLatticeEntry {
    /// The hypothesised word.
    pub word: WordId,
    /// First frame of the word (inclusive).
    pub start_frame: usize,
    /// Last frame of the word (inclusive).
    pub end_frame: usize,
    /// Acoustic log score accumulated over the word's frames.
    pub acoustic_score: LogProb,
}

/// A lattice of word candidates over an utterance.
#[derive(Debug, Clone, Default)]
pub struct WordLattice {
    entries: Vec<WordLatticeEntry>,
    num_frames: usize,
}

impl WordLattice {
    /// Creates an empty lattice for an utterance of `num_frames` frames.
    pub fn new(num_frames: usize) -> Self {
        WordLattice {
            entries: Vec::new(),
            num_frames,
        }
    }

    /// Number of frames the lattice covers.
    pub fn num_frames(&self) -> usize {
        self.num_frames
    }

    /// Sets the number of frames the lattice covers — used by the incremental
    /// search, which only learns the utterance length when it is finished.
    pub fn set_num_frames(&mut self, num_frames: usize) {
        self.num_frames = num_frames;
    }

    /// Number of word candidates.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the lattice has no candidates.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Adds a word candidate.
    pub fn push(&mut self, entry: WordLatticeEntry) {
        self.entries.push(entry);
    }

    /// All candidates (unordered).
    pub fn entries(&self) -> &[WordLatticeEntry] {
        &self.entries
    }

    /// Candidates ending at a given frame.
    pub fn ending_at(&self, frame: usize) -> Vec<&WordLatticeEntry> {
        self.entries
            .iter()
            .filter(|e| e.end_frame == frame)
            .collect()
    }

    /// Mean number of distinct word candidates per frame (lattice density),
    /// a proxy for the word-decode stage's workload.
    pub fn density(&self) -> f64 {
        if self.num_frames == 0 {
            return 0.0;
        }
        self.entries.len() as f64 / self.num_frames as f64
    }

    /// The global best path search: a dynamic program over lattice entries
    /// that combines acoustic scores with the weighted language model and a
    /// word-insertion penalty, returning the best-scoring word sequence.
    ///
    /// Adjacent words must be (approximately) contiguous in time: the next
    /// word must start within `gap_tolerance` frames of the previous word's
    /// end.
    pub fn best_path(
        &self,
        lm: &NGramModel,
        lm_weight: f32,
        word_insertion_penalty: f32,
        gap_tolerance: usize,
    ) -> Vec<WordId> {
        if self.entries.is_empty() {
            return Vec::new();
        }
        // Sort entry indices by end frame for a left-to-right DP.
        let mut order: Vec<usize> = (0..self.entries.len()).collect();
        order.sort_by_key(|&i| (self.entries[i].end_frame, self.entries[i].start_frame));

        // dp[i] = best score of any path ending with entry i; back[i] = predecessor.
        let mut dp = vec![LogProb::zero(); self.entries.len()];
        let mut back: Vec<Option<usize>> = vec![None; self.entries.len()];

        for &i in &order {
            let e = &self.entries[i];
            // Starting a new path with this word.
            let start_score = e.acoustic_score
                + lm.log_prob(&[], e.word).powf(lm_weight)
                + LogProb::new(word_insertion_penalty);
            if e.start_frame <= gap_tolerance {
                dp[i] = start_score;
            }
            // Extending a previous path.
            for &j in &order {
                if j == i {
                    continue;
                }
                let prev = &self.entries[j];
                if prev.end_frame >= e.start_frame
                    || e.start_frame - prev.end_frame > gap_tolerance + 1
                {
                    continue;
                }
                if dp[j].is_zero() {
                    continue;
                }
                let mut history = vec![prev.word];
                if let Some(grand) = back[j] {
                    history.insert(0, self.entries[grand].word);
                }
                let candidate = dp[j]
                    + e.acoustic_score
                    + lm.log_prob(&history, e.word).powf(lm_weight)
                    + LogProb::new(word_insertion_penalty);
                if candidate.raw() > dp[i].raw() {
                    dp[i] = candidate;
                    back[i] = Some(j);
                }
            }
        }

        // Best final entry: prefer entries reaching the end of the utterance.
        let last_frame = self.num_frames.saturating_sub(1);
        let mut best: Option<usize> = None;
        for (i, e) in self.entries.iter().enumerate() {
            if dp[i].is_zero() {
                continue;
            }
            let reaches_end = e.end_frame + gap_tolerance >= last_frame;
            let best_reaches_end = best
                .map(|b| self.entries[b].end_frame + gap_tolerance >= last_frame)
                .unwrap_or(false);
            let better = match best {
                None => true,
                Some(b) => {
                    if reaches_end != best_reaches_end {
                        reaches_end
                    } else {
                        dp[i].raw() > dp[b].raw()
                    }
                }
            };
            if better {
                best = Some(i);
            }
        }

        // Trace back.
        let mut words = Vec::new();
        let mut cursor = best;
        while let Some(i) = cursor {
            words.push(self.entries[i].word);
            cursor = back[i];
        }
        words.reverse();
        words
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asr_lexicon::NGramOrder;

    fn entry(word: u32, start: usize, end: usize, score: f32) -> WordLatticeEntry {
        WordLatticeEntry {
            word: WordId(word),
            start_frame: start,
            end_frame: end,
            acoustic_score: LogProb::new(score),
        }
    }

    #[test]
    fn empty_lattice() {
        let l = WordLattice::new(100);
        assert!(l.is_empty());
        assert_eq!(l.len(), 0);
        assert_eq!(l.num_frames(), 100);
        assert_eq!(l.density(), 0.0);
        let lm = NGramModel::uniform(10).unwrap();
        assert!(l.best_path(&lm, 1.0, 0.0, 3).is_empty());
        assert_eq!(WordLattice::new(0).density(), 0.0);
    }

    #[test]
    fn basic_accessors() {
        let mut l = WordLattice::new(30);
        l.push(entry(1, 0, 9, -10.0));
        l.push(entry(2, 10, 19, -12.0));
        l.push(entry(3, 10, 19, -15.0));
        assert_eq!(l.len(), 3);
        assert_eq!(l.ending_at(19).len(), 2);
        assert_eq!(l.ending_at(9).len(), 1);
        assert!(l.ending_at(5).is_empty());
        assert!((l.density() - 0.1).abs() < 1e-12);
        assert_eq!(l.entries().len(), 3);
    }

    #[test]
    fn best_path_picks_acoustically_better_chain() {
        let mut l = WordLattice::new(20);
        l.push(entry(1, 0, 9, -10.0));
        l.push(entry(2, 10, 19, -12.0)); // good second word
        l.push(entry(3, 10, 19, -30.0)); // much worse alternative
        let lm = NGramModel::uniform(10).unwrap();
        let path = l.best_path(&lm, 1.0, 0.0, 2);
        assert_eq!(path, vec![WordId(1), WordId(2)]);
    }

    #[test]
    fn best_path_respects_time_contiguity() {
        let mut l = WordLattice::new(40);
        l.push(entry(1, 0, 9, -10.0));
        // A very good word that overlaps word 1 cannot follow it.
        l.push(entry(2, 5, 15, -1.0));
        // A word that starts far after word 1 ends (gap > tolerance) cannot follow either.
        l.push(entry(3, 30, 39, -1.0));
        let lm = NGramModel::uniform(10).unwrap();
        let path = l.best_path(&lm, 1.0, 0.0, 2);
        // Paths: [1], [2] (starts at 5 > tolerance → cannot start), [3] (cannot start), [1] alone…
        // Best single-start path is word 1; nothing can legally follow it.
        assert_eq!(path, vec![WordId(1)]);
    }

    #[test]
    fn language_model_breaks_acoustic_ties() {
        // Train a bigram LM that strongly prefers 0 → 1 over 0 → 2.
        let sentences: Vec<Vec<WordId>> = (0..20).map(|_| vec![WordId(0), WordId(1)]).collect();
        let lm = NGramModel::train(NGramOrder::Bigram, 3, &sentences).unwrap();
        let mut l = WordLattice::new(20);
        l.push(entry(0, 0, 9, -10.0));
        l.push(entry(1, 10, 19, -12.0));
        l.push(entry(2, 10, 19, -12.0)); // acoustically identical to word 1
        let path = l.best_path(&lm, 4.0, 0.0, 2);
        assert_eq!(path, vec![WordId(0), WordId(1)]);
    }

    #[test]
    fn insertion_penalty_discourages_many_short_words() {
        let lm = NGramModel::uniform(10).unwrap();
        let mut l = WordLattice::new(20);
        // One long word covering everything…
        l.push(entry(1, 0, 19, -20.0));
        // …or two short words with the same total acoustic score.
        l.push(entry(2, 0, 9, -10.0));
        l.push(entry(3, 10, 19, -10.0));
        // LM cost alone already favours fewer words under a uniform LM; a big
        // insertion penalty must force the single-word reading.
        let path = l.best_path(&lm, 1.0, -20.0, 2);
        assert_eq!(path, vec![WordId(1)]);
    }

    #[test]
    fn prefers_paths_reaching_the_end() {
        let lm = NGramModel::uniform(10).unwrap();
        let mut l = WordLattice::new(30);
        // A great word covering only the first third…
        l.push(entry(1, 0, 9, -1.0));
        // …and a weaker chain that covers the whole utterance.
        l.push(entry(2, 0, 14, -20.0));
        l.push(entry(3, 15, 29, -20.0));
        let path = l.best_path(&lm, 1.0, 0.0, 2);
        assert_eq!(path, vec![WordId(2), WordId(3)]);
    }
}
